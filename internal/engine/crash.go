package engine

// This file is the engine half of the crash-recovery subsystem (the other
// half, the manager that owns the durable checkpoint/journal and drives
// recovery, is internal/crash). It implements the hard-crash fault point —
// at one virtual instant the card loses every piece of volatile state —
// and the state extraction/restore hooks the manager builds on:
// TakeCheckpoint/RestoreCheckpoint over the per-function namespace maps
// and backend allocation state, a write-ack journal hook fired on both the
// classic and fused I/O paths, and Recover to bring a dead card back.
//
// Crash semantics: in-flight commands vanish without completions (the
// host driver's timeout/retry machinery turns them into the in-doubt
// window — a dead card cannot post CQEs, so nothing is synthesized),
// doorbells and register writes are ignored while dead, and the backend
// quiesce gates latch shut. The backend queue rings and the SSDs stay
// untouched: commands the SSDs already fetched keep executing, their CQEs
// are drained by onIRQ and dropped as stale by complete(), which keeps
// ring head/phase consistent for the restore. Work that was parked across
// the crash (QoS buffer, gate waits, slot waits) wakes normally and bails
// on the epoch check.

import (
	"fmt"
	"sort"

	"bmstore/internal/fault"
	"bmstore/internal/nvme"
	"bmstore/internal/sim"
)

// CrashTarget is the target name engine-crash rules are evaluated
// against; rules with an empty Target match it, so specs normally omit it.
const CrashTarget = "engine"

// CrashInfo describes one hard crash, passed to the manager's hook.
type CrashInfo struct {
	At    int64  // virtual instant of the crash
	Epoch uint64 // crash generation after this crash
	// Dropped is how many backend I/O commands were in flight and vanished
	// without completions — the engine-side upper bound of the in-doubt
	// window.
	Dropped int
}

// WriteExtent is the physical placement of one piece of an acked write.
type WriteExtent struct {
	Backend int    // engine backend index
	Serial  string // backend SSD serial
	NSID    uint32 // backend namespace the data lives in
	PhysLBA uint64
	Blocks  uint32
}

// WriteAck describes one successfully acknowledged write, reported to the
// journal hook at the instant before its CQE is posted: "acked" and
// "journaled" are atomic in the model, mirroring a capacitor-backed intent
// log written before the completion doorbell.
type WriteAck struct {
	At      int64
	Fn      int // front-end function the write arrived on
	SLBA    uint64
	NLB     uint32
	Extents []WriteExtent
}

// NamespaceCheckpoint is the durable image of one bound namespace: name,
// geometry, QoS limits, and the chunk map in logical order (the mapping
// table is rebuilt from it at restore).
type NamespaceCheckpoint struct {
	Fn      int // front-end function the namespace is bound to
	Name    string
	SizeLBA uint64
	QoS     QoSLimits
	Chunks  []Entry
}

// BackendCheckpoint is the durable image of one backend: the chunk
// allocation bitmap plus the in-flight CID table at checkpoint time. The
// CID list is informational — those commands are exactly the ones a crash
// after this checkpoint can lose — so it sizes the in-doubt window in
// recovery reports.
type BackendCheckpoint struct {
	Serial      string
	Chunks      []bool
	PendingCIDs []uint16
}

// Checkpoint is a serializable snapshot of the engine's volatile state.
type Checkpoint struct {
	Taken      int64 // virtual time the snapshot was taken
	Namespaces []NamespaceCheckpoint
	Backends   []BackendCheckpoint
}

// Dead reports whether the engine has hard-crashed and not yet recovered.
func (e *Engine) Dead() bool { return e.dead }

// Epoch returns the crash generation counter: it increments on every
// crash, and work started before a crash uses it to detect that it raced
// one and must not touch the restored state.
func (e *Engine) Epoch() uint64 { return e.epoch }

// SetCrashHooks registers the crash manager's callbacks: onCrash fires at
// the crash instant (after volatile state is gone), onWriteAck on every
// successful write acknowledgement (the journal feed), and onCtlChange on
// every control-plane mutation (the manager re-takes its checkpoint, so
// the snapshot a crash restores from is never stale). All three may be nil.
func (e *Engine) SetCrashHooks(onCrash func(CrashInfo), onWriteAck func(WriteAck), onCtlChange func()) {
	e.onCrash, e.onWriteAck, e.onCtlChange = onCrash, onWriteAck, onCtlChange
}

func (e *Engine) ctlChanged() {
	if e.onCtlChange != nil {
		e.onCtlChange()
	}
}

// armCrashRules wires hard-crash rules to virtual time. Rules with t= fire
// from a timer at exactly rule.At; rules with nth= are evaluated on each
// engine dispatch (crashDispatchHit). Both route through Injector.Hit so
// Injected()/InjectedBy stay truthful for the invariant checkers. When
// both forms appear in one rig the crash lands at whichever instant comes
// first — the dispatch evaluation can fire an armed t= rule one dispatch
// early, which still crashes within the same virtual neighbourhood and
// stays deterministic.
func (e *Engine) armCrashRules() {
	if e.flt == nil || e.crashArmed {
		return
	}
	e.crashArmed = true
	for _, r := range e.flt.Rules() {
		if r.Point != fault.EngineCrash {
			continue
		}
		if r.Nth > 0 {
			e.crashOnDispatch = true
			continue
		}
		delay := sim.Time(r.At) - e.env.Now()
		if delay < 0 {
			delay = 0
		}
		e.env.Schedule(delay, e.crashTimerFire)
	}
}

func (e *Engine) crashTimerFire() {
	if e.flt.Hit(fault.EngineCrash, CrashTarget, int64(e.env.Now())) != nil {
		e.enterCrash()
	}
}

// crashDispatchHit evaluates Nth-dispatch engine-crash rules at a dispatch
// point and reports whether the engine just crashed. The dispatching
// command itself is swallowed by the crash.
func (e *Engine) crashDispatchHit() bool {
	if !e.crashOnDispatch {
		return false
	}
	if e.flt.Hit(fault.EngineCrash, CrashTarget, int64(e.env.Now())) != nil {
		e.enterCrash()
		return true
	}
	return false
}

// enterCrash is the hard-crash fault point. It is idempotent: a second
// trigger on an already-dead card is a no-op.
func (e *Engine) enterCrash() {
	if e.dead {
		return
	}
	now := e.env.Now()
	e.dead = true
	e.epoch++
	for _, f := range e.funcs {
		if f.enabled {
			f.disable()
		}
	}
	// Bound namespaces lose their volatile translation state; recovery
	// rebuilds it from the checkpoint. Parked QoS-buffer entries stay
	// queued — the dispatcher keeps draining them, and the waiting commands
	// bail on the epoch check when they wake.
	for _, f := range e.funcs {
		ns := f.ns
		if ns == nil {
			continue
		}
		ns.mt = NewMappingTable(e.cfg.MTRows, e.cfg.ChunkBytes, ns.blockSize)
		ns.chunks = nil
	}
	dropped := 0
	for _, b := range e.backends {
		dropped += b.crashDropPending()
		// Latch the gate directly: closeGate's drain wait has no meaning on
		// a dead card, and abandonPending must NOT run — a dead engine
		// cannot post CQEs, so the host only learns of the loss through its
		// command timeouts (the honest in-doubt window).
		b.gateClosed = true
	}
	if e.tr != nil {
		e.tr.Emit(now, "engine", "crash", e.epoch, uint64(dropped), "")
	}
	if e.onCrash != nil {
		e.onCrash(CrashInfo{At: int64(now), Epoch: e.epoch, Dropped: dropped})
	}
}

// crashDropPending forgets every outstanding backend command without
// completing it, in CID order so replay stays deterministic. Admin waiters
// would hang forever on a silent drop (adminCmd waits unbounded), so those
// get a synthetic internal-error completion; I/O commands just vanish.
func (b *backend) crashDropPending() int {
	cids := make([]int, 0, len(b.pending))
	for cid := range b.pending {
		cids = append(cids, int(cid))
	}
	sort.Ints(cids)
	dropped := 0
	for _, c := range cids {
		cid := uint16(c)
		pend := b.pending[cid]
		delete(b.pending, cid)
		pend.sq.slots.Release()
		isAdmin := pend.sq == b.adminSQ
		done := pend.done
		pend.sq, pend.done = nil, nil
		b.pendFree = append(b.pendFree, pend)
		if isAdmin {
			done(nvme.Completion{CID: cid, Status: nvme.StatusInternal})
			continue
		}
		b.inflight--
		b.mInflight.Dec(b.e.env.Now())
		dropped++
	}
	b.inflight = 0
	if b.drainEv != nil {
		b.drainEv.Trigger(nil)
	}
	return dropped
}

// TakeCheckpoint snapshots the bound namespaces and backend allocation
// state. Unbound namespace objects live in the BMS-Controller's management
// plane, which has its own persistence — the checkpoint covers only the
// card's per-function I/O state.
func (e *Engine) TakeCheckpoint() *Checkpoint {
	cp := &Checkpoint{Taken: int64(e.env.Now())}
	for _, f := range e.funcs {
		if f.ns == nil {
			continue
		}
		ns := f.ns
		cp.Namespaces = append(cp.Namespaces, NamespaceCheckpoint{
			Fn:      int(f.id),
			Name:    ns.Name,
			SizeLBA: ns.SizeLBA,
			QoS:     ns.qos.limits,
			Chunks:  append([]Entry(nil), ns.chunks...),
		})
	}
	for _, b := range e.backends {
		bc := BackendCheckpoint{
			Serial: b.dev.Config().Serial,
			Chunks: append([]bool(nil), b.chunks...),
		}
		for cid, pend := range b.pending {
			if pend.sq != b.adminSQ {
				bc.PendingCIDs = append(bc.PendingCIDs, cid)
			}
		}
		sort.Slice(bc.PendingCIDs, func(i, j int) bool { return bc.PendingCIDs[i] < bc.PendingCIDs[j] })
		cp.Backends = append(cp.Backends, bc)
	}
	return cp
}

// RestoreCheckpoint rebuilds the engine's volatile state from cp, in
// place: the bound Namespace objects keep their identity (external holders
// keep valid pointers), only their contents are reconstructed.
func (e *Engine) RestoreCheckpoint(cp *Checkpoint) error {
	for _, bc := range cp.Backends {
		b := e.backendBySerial(bc.Serial)
		if b == nil {
			return fmt.Errorf("engine: checkpoint names unknown backend %q", bc.Serial)
		}
		b.chunks = append(b.chunks[:0], bc.Chunks...)
	}
	for _, nc := range cp.Namespaces {
		if nc.Fn < 0 || nc.Fn >= len(e.funcs) {
			return fmt.Errorf("engine: checkpoint function %d out of range", nc.Fn)
		}
		ns := e.funcs[nc.Fn].ns
		if ns == nil {
			return fmt.Errorf("engine: checkpoint has namespace %q on function %d but none is bound", nc.Name, nc.Fn)
		}
		mt := NewMappingTable(e.cfg.MTRows, e.cfg.ChunkBytes, ns.blockSize)
		for i, ent := range nc.Chunks {
			if err := mt.Set(i, ent); err != nil {
				return fmt.Errorf("engine: checkpoint chunk %d of %q: %w", i, nc.Name, err)
			}
		}
		ns.Name = nc.Name
		ns.SizeLBA = nc.SizeLBA
		ns.mt = mt
		ns.chunks = append(ns.chunks[:0], nc.Chunks...)
		ns.qos = newQoSBucket(e.env, nc.QoS)
	}
	return nil
}

func (e *Engine) backendBySerial(serial string) *backend {
	for _, b := range e.backends {
		if b.dev.Config().Serial == serial {
			return b
		}
	}
	return nil
}

// Recover brings a crashed engine back from cp: restore the volatile
// state, clear the dead latch, and reopen the backend gates. Front-end
// functions stay disabled until the host driver re-enables them through CC
// during its re-attach — the order real hardware would see. The caller
// (the crash manager) sequences journal redo and driver re-attach around
// this.
func (e *Engine) Recover(cp *Checkpoint) error {
	if !e.dead {
		return fmt.Errorf("engine: recover on a live engine")
	}
	if err := e.RestoreCheckpoint(cp); err != nil {
		return err
	}
	e.dead = false
	for _, b := range e.backends {
		b.openGate()
	}
	if e.tr != nil {
		e.tr.Emit(e.env.Now(), "engine", "recover", e.epoch, 0, "")
	}
	return nil
}

// journalAck reports one acknowledged write with its physical placement to
// the crash manager. Callers only invoke it when onWriteAck is set.
func (e *Engine) journalAck(f *function, slba uint64, nlb uint32, subs []subCommand) {
	wa := WriteAck{At: int64(e.env.Now()), Fn: int(f.id), SLBA: slba, NLB: nlb}
	for _, sub := range subs {
		be := e.backends[sub.ssd]
		wa.Extents = append(wa.Extents, WriteExtent{
			Backend: sub.ssd,
			Serial:  be.dev.Config().Serial,
			NSID:    be.backendNSID,
			PhysLBA: sub.physLBA,
			Blocks:  sub.blocks,
		})
	}
	e.onWriteAck(wa)
}
