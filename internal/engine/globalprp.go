package engine

import "bmstore/internal/pcie"

// Global PRP format (paper Fig. 4b): the BMS-Engine repurposes the high
// reserved bits of a 64-bit PRP entry to route back-end DMA. Bits [54:48]
// carry the 7-bit PCIe function ID of the host PF/VF that issued the
// command, and bit 55 flags PRP-list pointers. Host physical addresses fit
// comfortably below bit 48.
//
// Bit 63 marks addresses in the engine's own chip memory (back-end queue
// rings and rewritten PRP-list pages); it plays the role of the separate
// BAR window a real device would decode.
const (
	HostAddrBits = 48
	HostAddrMask = uint64(1)<<HostAddrBits - 1

	fnShift     = 48
	fnMask      = uint64(0x7F) << fnShift
	listFlagBit = uint64(1) << 55

	// ChipMemFlag marks an engine-chip-memory address.
	ChipMemFlag = uint64(1) << 63
)

// EncodeGlobalPRP tags a host physical address with the issuing function.
func EncodeGlobalPRP(fn pcie.FuncID, hostAddr uint64, list bool) uint64 {
	if hostAddr&^HostAddrMask != 0 {
		panic("engine: host address exceeds 48 bits")
	}
	v := hostAddr | uint64(fn)<<fnShift
	if list {
		v |= listFlagBit
	}
	return v
}

// DecodeGlobalPRP splits a global PRP back into its components.
func DecodeGlobalPRP(v uint64) (fn pcie.FuncID, hostAddr uint64, list bool) {
	return pcie.FuncID(v & fnMask >> fnShift), v & HostAddrMask, v&listFlagBit != 0
}

// IsChipMem reports whether an address decodes into engine chip memory.
func IsChipMem(v uint64) bool { return v&ChipMemFlag != 0 }

// ChipAddr strips the chip-memory flag.
func ChipAddr(v uint64) uint64 { return v &^ ChipMemFlag }
