package engine

import (
	"fmt"
	"testing"

	"bmstore/internal/nvme"
	"bmstore/internal/sim"
	"bmstore/internal/ssd"
)

// Chip-memory PRP list pages must recycle: a long stream of large I/Os
// through a deliberately tiny chip RAM succeeds only if completed
// commands' list pages return to the free pool.
func TestChipMemoryPRPListRecycling(t *testing.T) {
	h := newFeHarness(t, 1)
	// Rebuild with a tiny chip memory is intrusive; instead drive enough
	// list-bearing I/O that a leak of one page per command would consume
	// >8x the default backend-ring headroom.
	ns, err := h.eng.CreateNamespace("v", 16*testChunk, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Bind(0, ns)
	before := len(h.eng.free) + 0
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 256)
		buf := h.mem.AllocPages(32) // 128K => PRP list per I/O
		for i := 0; i < 500; i++ {
			cpl := h.rw(p, 0, nvme.IORead, uint64(i%100)*32, make([]byte, 32*ssd.BlockSize), buf)
			if cpl.Status.IsError() {
				t.Fatalf("read %d: %#x", i, cpl.Status)
			}
		}
	})
	// All list pages are back on the free list (no leak): the pool grew by
	// at most the in-flight working set, not by ~500 pages.
	if grown := len(h.eng.free) - before; grown > 64 {
		t.Fatalf("free list grew by %d, expected bounded reuse", grown)
	}
	if len(h.eng.free) == 0 {
		t.Fatal("no pages ever recycled")
	}
}

// QoS command buffer drains strictly FIFO (the Fig. 5 dispatcher).
func TestQoSBufferFIFOOrder(t *testing.T) {
	env := sim.NewEnv(3)
	ns := &Namespace{env: env, qos: newQoSBucket(env, QoSLimits{IOPS: 1000})}
	// Exhaust the burst.
	for {
		if ok, _ := ns.qos.Admit(4096); !ok {
			break
		}
	}
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Go(fmt.Sprintf("cmd%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Time(i)) // deterministic arrival order
			ns.admit(p, 4096)
			order = append(order, i)
		})
	}
	env.Run()
	if len(order) != 10 {
		t.Fatalf("only %d admitted", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch order %v, want FIFO", order)
		}
	}
}

// A function unbound mid-flight keeps completing cleanly; rebinding a new
// namespace gives the tenant the new capacity (hot-plug identity story).
func TestUnbindRebindFunction(t *testing.T) {
	h := newFeHarness(t, 1)
	nsA, _ := h.eng.CreateNamespace("a", 2*testChunk, []int{0})
	h.eng.Bind(0, nsA)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		if cpl := h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf); cpl.Status.IsError() {
			t.Fatalf("read: %#x", cpl.Status)
		}
		h.eng.Unbind(0)
		if cpl := h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf); cpl.Status != nvme.StatusInvalidNamespace {
			t.Fatalf("unbound read: %#x", cpl.Status)
		}
		nsB, err := h.eng.CreateNamespace("b", 4*testChunk, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.eng.Bind(0, nsB); err != nil {
			t.Fatal(err)
		}
		if cpl := h.rw(p, 0, nvme.IORead, 3*256, make([]byte, ssd.BlockSize), buf); cpl.Status.IsError() {
			t.Fatalf("rebound read: %#x", cpl.Status)
		}
	})
}

// Store-and-forward staging (the ablation) still delivers correct data.
func TestStoreAndForwardCorrectness(t *testing.T) {
	h2 := newFeHarnessWith(t, 1, func(cfg *Config) { cfg.StoreAndForward = true })
	ns, _ := h2.eng.CreateNamespace("v", 2*testChunk, []int{0})
	h2.eng.Bind(0, ns)
	h2.run(func(p *sim.Proc) {
		h2.initFunc(p, 0, 64)
		data := make([]byte, 4*ssd.BlockSize)
		for i := range data {
			data[i] = byte(i * 7)
		}
		buf := h2.mem.AllocPages(4)
		if cpl := h2.rw(p, 0, nvme.IOWrite, 8, data, buf); cpl.Status.IsError() {
			t.Fatalf("write: %#x", cpl.Status)
		}
		rbuf := h2.mem.AllocPages(4)
		if cpl := h2.rw(p, 0, nvme.IORead, 8, make([]byte, len(data)), rbuf); cpl.Status.IsError() {
			t.Fatalf("read: %#x", cpl.Status)
		}
		got := make([]byte, len(data))
		h2.mem.Read(rbuf, got)
		for i := range got {
			if got[i] != data[i] {
				t.Fatal("store-and-forward corrupted data")
			}
		}
	})
}
