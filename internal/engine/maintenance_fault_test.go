package engine

import (
	"testing"

	"bmstore/internal/fault"
	"bmstore/internal/nvme"
	"bmstore/internal/sim"
	"bmstore/internal/ssd"
)

// TestIdleQuiesceResume exercises the maintenance surface with zero
// commands in flight: the gate closes immediately, resume is a pure gate
// reopen (no queue rebuild), and the data path works across the round
// trip — twice, to catch state leaking between cycles.
func TestIdleQuiesceResume(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		for round := 0; round < 2; round++ {
			before := p.Now()
			h.eng.QuiesceBackend(p, 0)
			if p.Now() != before {
				t.Fatalf("round %d: idle quiesce took %v, want instant", round, p.Now()-before)
			}
			if h.eng.BackendReady(0) {
				t.Fatalf("round %d: backend reports ready while quiesced", round)
			}
			if err := h.eng.ResumeBackend(p, 0); err != nil {
				t.Fatalf("round %d: resume: %v", round, err)
			}
			if !h.eng.BackendReady(0) {
				t.Fatalf("round %d: backend not ready after resume", round)
			}
			if cpl := h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf); cpl.Status.IsError() {
				t.Fatalf("round %d: read after resume: %#x", round, cpl.Status)
			}
		}
	})
}

// TestResumeBackendReinitErrorPath forces the post-reset queue rebuild to
// fail (injected admin error on the SSD) and checks the contract
// documented on ResumeBackend: the error is surfaced, the gate stays
// closed so no host I/O escapes into a half-initialised backend, and a
// retry once the fault clears completes the bring-up.
func TestResumeBackendReinitErrorPath(t *testing.T) {
	// Arm one admin-command failure well after construction-time bring-up
	// and the firmware download/commit below, so the first command it can
	// hit is the Identify that opens the re-init sequence.
	env := sim.NewEnv(11)
	env.SetFaults(fault.New(fault.Rule{
		Point:  fault.SSDAdmin,
		Target: "SN000",
		At:     int64(1 * sim.Second),
		Count:  1,
		Status: uint16(nvme.StatusInternal),
	}))
	h := newFeHarnessEnv(t, env, 1, nil)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		// Reset the SSD through a firmware activation so resume must
		// rebuild the backend queues.
		h.eng.QuiesceBackend(p, 0)
		img := append([]byte("VDV10199"), make([]byte, 4088)...)
		if cpl := h.eng.BackendAdmin(p, 0, nvme.Command{
			Opcode: nvme.AdminFWDownload, CDW10: uint32(len(img)/4) - 1,
		}, img, nil); cpl.Status.IsError() {
			t.Fatalf("fw download: %#x", cpl.Status)
		}
		if cpl := h.eng.BackendAdmin(p, 0, nvme.Command{Opcode: nvme.AdminFWCommit, CDW10: 3 << 3}, nil, nil); cpl.Status.IsError() {
			t.Fatalf("fw commit: %#x", cpl.Status)
		}
		p.Sleep(sim.Millisecond)
		h.eng.WaitBackendReset(p, 0)

		err := h.eng.ResumeBackend(p, 0)
		if err == nil {
			t.Fatal("resume succeeded despite injected admin fault")
		}
		if h.eng.BackendReady(0) {
			t.Fatal("backend reports ready after failed resume")
		}
		if got := env.Faults().Injected(); got != 1 {
			t.Fatalf("injected %d faults, want 1", got)
		}

		// The device is enabled (CC was written before Identify failed), so
		// this retry re-initialises purely because the previous bring-up
		// did not finish — the !b.ready half of the resume condition.
		if err := h.eng.ResumeBackend(p, 0); err != nil {
			t.Fatalf("retry resume: %v", err)
		}
		if !h.eng.BackendReady(0) {
			t.Fatal("backend not ready after successful retry")
		}
		if got := h.eng.BackendFirmware(0); got != "VDV10199" {
			t.Fatalf("firmware %q after upgrade", got)
		}
		buf := h.mem.AllocPages(1)
		if cpl := h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf); cpl.Status.IsError() {
			t.Fatalf("read after recovered resume: %#x", cpl.Status)
		}
	})
}
