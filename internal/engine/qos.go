package engine

import "bmstore/internal/sim"

// QoSLimits caps a namespace's I/O rate. Zero fields mean unlimited.
type QoSLimits struct {
	IOPS        float64 // operations per second
	BytesPerSec float64
}

// qosBucket is a dual token bucket (operations and bytes) with continuous
// refill, the "threshold limit" check of the paper's Fig. 5. Commands that
// exceed the threshold are parked in the namespace's command buffer and the
// command dispatcher reschedules them when tokens accrue.
type qosBucket struct {
	env    *sim.Env
	limits QoSLimits

	ops      float64
	bytes    float64
	lastFill sim.Time

	// burst depth: one second's worth, bounded below so single large I/Os
	// always fit.
	opsBurst   float64
	bytesBurst float64
}

func newQoSBucket(env *sim.Env, l QoSLimits) *qosBucket {
	b := &qosBucket{env: env, limits: l}
	b.opsBurst = l.IOPS / 100 // 10ms of burst
	if b.opsBurst < 8 {
		b.opsBurst = 8
	}
	b.bytesBurst = l.BytesPerSec / 100
	if b.bytesBurst < 4<<20 {
		b.bytesBurst = 4 << 20
	}
	b.ops = b.opsBurst
	b.bytes = b.bytesBurst
	b.lastFill = env.Now()
	return b
}

// Unlimited reports whether no limit is configured.
func (b *qosBucket) Unlimited() bool {
	return b.limits.IOPS <= 0 && b.limits.BytesPerSec <= 0
}

func (b *qosBucket) refill() {
	now := b.env.Now()
	dt := float64(now-b.lastFill) / 1e9
	b.lastFill = now
	if b.limits.IOPS > 0 {
		b.ops += dt * b.limits.IOPS
		if b.ops > b.opsBurst {
			b.ops = b.opsBurst
		}
	}
	if b.limits.BytesPerSec > 0 {
		b.bytes += dt * b.limits.BytesPerSec
		if b.bytes > b.bytesBurst {
			b.bytes = b.bytesBurst
		}
	}
}

// Admit tries to charge one operation of n bytes. It returns ok=true when
// the command may proceed now; otherwise wait is how long until enough
// tokens will have accrued.
func (b *qosBucket) Admit(n int) (ok bool, wait sim.Time) {
	if b.Unlimited() {
		return true, 0
	}
	b.refill()
	needOps := b.limits.IOPS > 0 && b.ops < 1
	needBytes := b.limits.BytesPerSec > 0 && b.bytes < float64(n)
	if !needOps && !needBytes {
		if b.limits.IOPS > 0 {
			b.ops--
		}
		if b.limits.BytesPerSec > 0 {
			b.bytes -= float64(n)
		}
		return true, 0
	}
	var w float64
	if needOps {
		w = (1 - b.ops) / b.limits.IOPS
	}
	if needBytes {
		if wb := (float64(n) - b.bytes) / b.limits.BytesPerSec; wb > w {
			w = wb
		}
	}
	wait = sim.Time(w * 1e9)
	if wait < sim.Microsecond {
		wait = sim.Microsecond
	}
	return false, wait
}
