package engine

import (
	"testing"
	"testing/quick"
)

func TestEntryEncodingMatchesPaperLayout(t *testing.T) {
	// Fig. 4a: bits [7:2] chunk, bits [1:0] SSD ID.
	e := Entry{SSD: 2, Chunk: 0x15}
	b := encodeEntry(e)
	if b != 0x15<<2|2 {
		t.Fatalf("encoded %#x", b)
	}
	if got := decodeEntry(b); got != e {
		t.Fatalf("decode %+v", got)
	}
}

func TestEntryRoundTripProperty(t *testing.T) {
	f := func(ssd, chunk uint8) bool {
		e := Entry{SSD: int(ssd % 4), Chunk: int(chunk % 64)}
		return decodeEntry(encodeEntry(e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMappingTableFieldLimits(t *testing.T) {
	mt := NewMappingTable(8, 1<<20, 4096)
	if err := mt.Set(0, Entry{SSD: 4, Chunk: 0}); err == nil {
		t.Fatal("SSD 4 should not fit 2 bits")
	}
	if err := mt.Set(0, Entry{SSD: 0, Chunk: 64}); err == nil {
		t.Fatal("chunk 64 should not fit 6 bits")
	}
	if err := mt.Set(64, Entry{}); err == nil {
		t.Fatal("index beyond 8x8 table accepted")
	}
	if err := mt.Set(0, Entry{SSD: 3, Chunk: 63}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingValidationBits(t *testing.T) {
	mt := NewMappingTable(8, 1<<20, 4096)
	if mt.Valid(3) {
		t.Fatal("fresh entry valid")
	}
	mt.Set(3, Entry{SSD: 1, Chunk: 7})
	if !mt.Valid(3) {
		t.Fatal("set entry invalid")
	}
	if _, _, err := mt.Lookup(0); err == nil {
		t.Fatal("lookup through invalid entry succeeded")
	}
	mt.Invalidate(3)
	if mt.Valid(3) {
		t.Fatal("invalidate did not clear")
	}
}

func TestLookupEquations(t *testing.T) {
	// 1 MB chunks of 4K blocks: CS = 256 LBAs.
	mt := NewMappingTable(8, 1<<20, 4096)
	mt.Set(0, Entry{SSD: 0, Chunk: 5})
	mt.Set(1, Entry{SSD: 3, Chunk: 9})
	// Host LBA 100 is inside logical chunk 0.
	ssdID, pl, err := mt.Lookup(100)
	if err != nil || ssdID != 0 || pl != 5*256+100 {
		t.Fatalf("got ssd=%d pl=%d err=%v", ssdID, pl, err)
	}
	// Host LBA 300 is inside logical chunk 1 at offset 44.
	ssdID, pl, err = mt.Lookup(300)
	if err != nil || ssdID != 3 || pl != 9*256+44 {
		t.Fatalf("got ssd=%d pl=%d err=%v", ssdID, pl, err)
	}
}

func TestLookupRangeSplitsAtChunkBoundary(t *testing.T) {
	mt := NewMappingTable(8, 1<<20, 4096) // 256 LBAs per chunk
	mt.Set(0, Entry{SSD: 0, Chunk: 0})
	mt.Set(1, Entry{SSD: 1, Chunk: 0})
	exts, err := mt.LookupRange(250, 12) // crosses chunk 0 -> 1
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 2 {
		t.Fatalf("%d extents, want 2", len(exts))
	}
	if exts[0].SSD != 0 || exts[0].Blocks != 6 || exts[0].PhysLBA != 250 {
		t.Fatalf("ext0 %+v", exts[0])
	}
	if exts[1].SSD != 1 || exts[1].Blocks != 6 || exts[1].PhysLBA != 0 {
		t.Fatalf("ext1 %+v", exts[1])
	}
}

// Property: LookupRange covers exactly the requested range in order, each
// extent stays within one chunk, and per-LBA results agree with Lookup.
func TestLookupRangeCoversProperty(t *testing.T) {
	mt := NewMappingTable(8, 1<<20, 4096)
	cs := mt.ChunkLBAs()
	for i := 0; i < mt.Slots(); i++ {
		mt.Set(i, Entry{SSD: i % 4, Chunk: (i * 7) % 64})
	}
	limit := uint64(mt.Slots()) * cs
	f := func(start uint32, blocks uint16) bool {
		s := uint64(start) % (limit - 600)
		n := uint32(blocks%600) + 1
		exts, err := mt.LookupRange(s, n)
		if err != nil {
			return false
		}
		cur := s
		var total uint32
		for _, e := range exts {
			if e.HostLBA != cur {
				return false
			}
			// stays inside one chunk
			if e.PhysLBA/cs != (e.PhysLBA+uint64(e.Blocks)-1)/cs {
				return false
			}
			// agrees with per-LBA lookup at both ends
			ssdID, pl, err := mt.Lookup(cur)
			if err != nil || ssdID != e.SSD || pl != e.PhysLBA {
				return false
			}
			cur += uint64(e.Blocks)
			total += e.Blocks
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
