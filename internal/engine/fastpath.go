package engine

// This file implements the BMS-Engine's event-fused I/O fast path: the
// continuation-passing rewrite of the front-end fetch loop, the Fig. 6
// pipeline (dispatch → map → QoS → PRP rewrite → forward), and the backend
// submit path. It follows the same rules as the SSD's fast path (see
// internal/ssd/fastpath.go and DESIGN.md §11): every virtual-time sleep
// becomes an Env.Schedule at the identical program point, synchronous steps
// keep their call order, and per-command records come from free lists. The
// path is only taken when Env.FastPath holds (no tracer, no fault injector);
// admin queues always use the classic process-based path.

import (
	"encoding/binary"

	"bmstore/internal/nvme"
	"bmstore/internal/obs"
	"bmstore/internal/obs/timeline"
	"bmstore/internal/pcie"
	"bmstore/internal/sim"
)

// after runs fn once delay has elapsed, mirroring Proc.Sleep's
// run-immediately semantics at zero delay.
func (e *Engine) after(delay sim.Time, fn func()) {
	if delay > 0 {
		e.env.Schedule(delay, fn)
		return
	}
	fn()
}

func (e *Engine) getPage() []byte {
	if n := len(e.pageFree); n > 0 {
		b := e.pageFree[n-1]
		e.pageFree = e.pageFree[:n-1]
		return b
	}
	return make([]byte, nvme.PageSize)
}

// feFetch is the continuation form of the front-end fetchLoop, one per I/O
// submission queue.
type feFetch struct {
	f   *function
	sq  *feSQ
	buf [nvme.SQESize]byte

	pendCmd  nvme.Command
	pendHead uint32

	stepFn     func()
	decodedFn  func()
	dispatchFn func()
}

func newFeFetch(f *function, sq *feSQ) *feFetch {
	ff := &feFetch{f: f, sq: sq}
	ff.stepFn = ff.step
	ff.decodedFn = ff.decoded
	ff.dispatchFn = ff.dispatch
	return ff
}

func (ff *feFetch) step() {
	f, sq := ff.f, ff.sq
	if sq.head == sq.tail {
		sq.fetching = false
		return
	}
	if !f.enabled {
		sq.fetching = false
		return
	}
	done := f.e.hostPort.DMARead(sq.ring.SlotAddr(sq.head), nvme.SQESize, ff.buf[:])
	f.e.after(done-f.e.env.Now(), ff.decodedFn)
}

func (ff *feFetch) decoded() {
	f, sq := ff.f, ff.sq
	ff.pendCmd = nvme.DecodeCommand(&ff.buf)
	sq.head = sq.ring.Next(sq.head)
	ff.pendHead = sq.head
	f.e.after(f.e.cfg.FetchLatency, ff.dispatchFn)
}

// dispatch starts the command's pipeline one queue hop from now (the classic
// process-start position) and continues fetching immediately.
func (ff *feFetch) dispatch() {
	e := ff.f.e
	io := e.getFeIO(ff.f, ff.sq, ff.pendCmd, ff.pendHead)
	e.env.Schedule(0, io.startFn)
	ff.step()
}

// cpsHostPRP is the retry-walk reader for host-memory PRP lists: the
// continuation counterpart of hostPRPReader, fetching one missing list page
// per attempt with identical DMA bookings and waits.
type cpsHostPRP struct {
	pages   map[uint64][]byte
	used    []uint64
	miss    uint64
	missSet bool
}

func (w *cpsHostPRP) ReadU64(addr uint64) uint64 {
	pg := addr &^ uint64(nvme.PageSize-1)
	if b, ok := w.pages[pg]; ok {
		return binary.LittleEndian.Uint64(b[addr-pg:])
	}
	if !w.missSet {
		w.missSet = true
		w.miss = pg
	}
	return 0
}

// feIO is one pooled in-flight front-end command: the continuation form of
// handleIO / forwardFlush.
type feIO struct {
	e      *Engine
	f      *function
	sq     *feSQ
	cmd    nvme.Command
	sqHead uint32

	ns     *Namespace
	skey   uint64
	slba   uint64
	nlb    uint32
	nBytes int
	start0 sim.Time
	qosT0  sim.Time
	epoch  uint64 // crash generation captured at start; stale → bail

	extents    []Extent
	subs       []subCommand
	lists      []uint64
	scratch    []nvme.Segment
	extScratch []nvme.Segment
	ssds       []int
	walker     *cpsHostPRP

	remaining int
	subIdx    int
	worst     nvme.Status

	startFn       func()
	mappedFn      func()
	admittedFn    func(any)
	walkFn        func()
	forwardNextFn func()
	forwardSubFn  func()
	subDoneFn     func(nvme.Completion)
	flushNextFn   func()
	flushDoneFn   func(nvme.Completion)
}

func (e *Engine) getFeIO(f *function, sq *feSQ, cmd nvme.Command, sqHead uint32) *feIO {
	var io *feIO
	if n := len(e.feIOFree); n > 0 {
		io = e.feIOFree[n-1]
		e.feIOFree = e.feIOFree[:n-1]
	} else {
		io = &feIO{e: e}
		io.startFn = io.start
		io.mappedFn = io.mapped
		io.admittedFn = io.admitted
		io.walkFn = io.walkAttempt
		io.forwardNextFn = io.forwardNext
		io.forwardSubFn = io.forwardSub
		io.subDoneFn = io.subDone
		io.flushNextFn = io.flushNext
		io.flushDoneFn = io.flushDone
	}
	io.f, io.sq, io.cmd, io.sqHead = f, sq, cmd, sqHead
	return io
}

func (e *Engine) putFeIO(io *feIO) {
	if w := io.walker; w != nil && len(w.used) > 0 {
		for _, pg := range w.used {
			e.pageFree = append(e.pageFree, w.pages[pg])
			delete(w.pages, pg)
		}
		w.used = w.used[:0]
	}
	io.f, io.sq, io.ns = nil, nil, nil
	if io.extents != nil {
		io.extents = io.extents[:0]
	}
	if io.subs != nil {
		io.subs = io.subs[:0]
	}
	if io.lists != nil {
		io.lists = io.lists[:0]
	}
	e.feIOFree = append(e.feIOFree, io)
}

// fail posts an error completion and recycles the record: the continuation
// form of handleIO's fail helper.
func (io *feIO) fail(st nvme.Status) {
	f, sq, cmd, sqHead := io.f, io.sq, io.cmd, io.sqHead
	io.e.putFeIO(io)
	f.postCQE(sq.cqid, nvme.Completion{CID: cmd.CID, SQID: sq.id, SQHead: uint16(sqHead), Status: st})
}

// start runs at the classic handleIO process's first activation position.
func (io *feIO) start() {
	f, e := io.f, io.e
	if e.dead || e.crashDispatchHit() {
		e.putFeIO(io) // the command vanishes; host timeout covers it
		return
	}
	io.epoch = e.epoch
	ns := f.ns
	if ns == nil || io.cmd.NSID != FrontNSID {
		io.fail(nvme.StatusInvalidNamespace)
		return
	}
	io.ns = ns
	switch io.cmd.Opcode {
	case nvme.IOFlush:
		io.startFlush()
		return
	case nvme.IORead, nvme.IOWrite:
	default:
		io.fail(nvme.StatusInvalidOpcode)
		return
	}
	io.skey = 0
	if e.met != nil {
		io.skey = obs.SpanKey(uint8(f.id), io.sq.id, io.cmd.CID)
		e.met.SpanMark(io.skey, obs.MarkDispatch, e.env.Now())
	}
	e.mDispatch.Inc()

	io.slba = io.cmd.SLBA()
	io.nlb = io.cmd.NLB()
	if io.slba+uint64(io.nlb) > ns.SizeLBA {
		io.fail(nvme.StatusLBAOutOfRange)
		return
	}
	io.nBytes = int(io.nlb) * int(ns.blockSize)
	e.after(e.cfg.MapLatency, io.mappedFn)
}

func (io *feIO) mapped() {
	if io.e.dead || io.e.epoch != io.epoch {
		io.e.putFeIO(io)
		return
	}
	var err error
	io.extents, err = io.ns.mt.LookupRangeInto(io.extents[:0], io.slba, io.nlb)
	if err != nil {
		io.fail(nvme.StatusInternal)
		return
	}
	io.qosT0 = io.e.env.Now()
	io.ns.admitCB(io.nBytes, io.admittedFn)
}

func (io *feIO) admitted(any) {
	if io.e.dead || io.e.epoch != io.epoch {
		io.e.putFeIO(io) // the QoS park outlived a crash
		return
	}
	if io.e.tl {
		io.e.met.SpanWait(io.skey, timeline.WaitQoS, int64(io.e.env.Now()-io.qosT0))
	}
	io.start0 = io.e.env.Now()
	// PRP conversion: the in-pipeline tag path needs no memory touch; list
	// transfers walk the host PRPs (fetching list pages) then assemble.
	if subs, ok := io.f.simpleSub(io.cmd, io.extents, io.nBytes, io.subs[:0]); ok {
		io.subs = subs
		io.forward()
		return
	}
	io.walkAttempt()
}

func (io *feIO) walkAttempt() {
	e := io.e
	w := io.walker
	if w == nil {
		w = &cpsHostPRP{pages: make(map[uint64][]byte)}
		io.walker = w
	}
	w.missSet = false
	segs, err := nvme.WalkPRPsInto(io.scratch[:0], w, io.cmd.PRP1, io.cmd.PRP2, io.nBytes)
	if w.missSet {
		b := e.getPage()
		done := e.hostPort.DMARead(w.miss, nvme.PageSize, b)
		w.pages[w.miss] = b
		w.used = append(w.used, w.miss)
		e.after(done-e.env.Now(), io.walkFn)
		return
	}
	if err != nil {
		io.fail(nvme.StatusInvalidField)
		return
	}
	io.scratch = segs
	io.subs, io.lists, io.extScratch = io.f.assembleSubs(segs, io.extents, io.subs[:0], io.lists[:0], io.extScratch)
	io.forward()
}

// forward joins the classic pipeline after buildSubCommands: span mark, then
// the submit loop with one ForwardLatency hop per sub-command.
func (io *feIO) forward() {
	e := io.e
	if e.met != nil {
		e.met.SpanMark(io.skey, obs.MarkMapped, e.env.Now())
	}
	io.remaining = len(io.subs)
	io.worst = nvme.StatusSuccess
	io.subIdx = 0
	io.forwardNext()
}

func (io *feIO) forwardNext() {
	if io.subIdx >= len(io.subs) {
		return // all submitted; completions drive the rest
	}
	io.e.after(io.e.cfg.ForwardLatency, io.forwardSubFn)
}

func (io *feIO) forwardSub() {
	e := io.e
	sub := io.subs[io.subIdx]
	io.subIdx++
	be := e.backends[sub.ssd]
	bcmd := nvme.Command{Opcode: io.cmd.Opcode, PRP1: sub.prp1, PRP2: sub.prp2}
	bcmd.SetSLBA(sub.physLBA)
	bcmd.SetNLB(sub.blocks)
	be.submitIOCB(bcmd, int(io.f.id)*7+int(io.sq.id), io.skey, io.subDoneFn, io.forwardNextFn)
}

func (io *feIO) subDone(c nvme.Completion) {
	if io.e.dead || io.e.epoch != io.epoch {
		// Completion raced a crash. Other sub-completions may still hold
		// this record, so it is abandoned to the GC rather than pooled.
		return
	}
	if c.Status.IsError() && io.worst == nvme.StatusSuccess {
		io.worst = c.Status
	}
	io.remaining--
	if io.remaining > 0 {
		return
	}
	e := io.e
	if e.met != nil {
		e.met.SpanMark(io.skey, obs.MarkBackendDone, e.env.Now())
	}
	e.freeChipPages(io.lists)
	io.lists = io.lists[:0]
	lat := e.env.Now() - io.start0
	if io.cmd.Opcode == nvme.IORead {
		io.ns.ReadStats.Record(io.nBytes, lat)
	} else {
		io.ns.WriteStats.Record(io.nBytes, lat)
	}
	f, sq, cmd, sqHead, worst := io.f, io.sq, io.cmd, io.sqHead, io.worst
	if e.onWriteAck != nil && cmd.Opcode == nvme.IOWrite && !worst.IsError() {
		e.journalAck(f, io.slba, io.nlb, io.subs)
	}
	e.putFeIO(io)
	f.postCQE(sq.cqid, nvme.Completion{CID: cmd.CID, SQID: sq.id, SQHead: uint16(sqHead), Status: worst})
}

// --- flush fan-out (continuation form of forwardFlush) ---

func (io *feIO) startFlush() {
	io.ssds = io.ns.ssdSetInto(io.ssds[:0])
	if len(io.ssds) == 0 {
		io.worst = nvme.StatusSuccess
		io.flushFinish()
		return
	}
	io.e.mFlushes.Inc()
	io.remaining = len(io.ssds)
	io.worst = nvme.StatusSuccess
	io.subIdx = 0
	io.flushNext()
}

func (io *feIO) flushNext() {
	if io.subIdx >= len(io.ssds) {
		return
	}
	idx := io.ssds[io.subIdx]
	io.subIdx++
	be := io.e.backends[idx]
	be.submitIOCB(nvme.Command{Opcode: nvme.IOFlush}, int(io.f.id), 0, io.flushDoneFn, io.flushNextFn)
}

func (io *feIO) flushDone(c nvme.Completion) {
	if c.Status.IsError() && io.worst == nvme.StatusSuccess {
		io.worst = c.Status
	}
	io.remaining--
	if io.remaining == 0 {
		io.flushFinish()
	}
}

func (io *feIO) flushFinish() {
	f, sq, cmd, sqHead, worst := io.f, io.sq, io.cmd, io.sqHead, io.worst
	io.e.putFeIO(io)
	f.postCQE(sq.cqid, nvme.Completion{CID: cmd.CID, SQID: sq.id, SQHead: uint16(sqHead), Status: worst})
}

// --- backend submit (continuation form of submitIO) ---

// beSubmit is one pooled in-flight submission attempt.
type beSubmit struct {
	b         *backend
	sq        *beSQ
	cmd       nvme.Command
	qhint     int
	skey      uint64
	t0        sim.Time
	epoch     uint64 // crash generation captured at submit entry
	done      func(nvme.Completion)
	submitted func()

	gateFn func(any)
	slotFn func(any)
}

// submitIOCB is submitIO for callback-chain callers: done runs on command
// completion exactly as submitIO's done does, and submitted runs at the
// program point where submitIO would have returned to its caller (after the
// SQE push). The quiesce gate and queue-depth waits park this record on the
// same events and FIFOs the classic path uses, so mixed classic/fast
// submitters keep their relative order. Injected backend stalls need no
// handling here: the fast path only exists when no fault injector is
// attached.
func (b *backend) submitIOCB(cmd nvme.Command, qhint int, skey uint64, done func(nvme.Completion), submitted func()) {
	var s *beSubmit
	if n := len(b.submitFree); n > 0 {
		s = b.submitFree[n-1]
		b.submitFree = b.submitFree[:n-1]
	} else {
		s = &beSubmit{b: b}
		s.gateFn = s.gate
		s.slotFn = s.slot
	}
	s.cmd, s.qhint, s.skey, s.done, s.submitted = cmd, qhint, skey, done, submitted
	s.t0 = b.e.env.Now()
	s.epoch = b.e.epoch
	s.gate(nil)
}

// gate re-checks the quiesce gate, parking on it while closed — the loop
// shape of waitGate.
func (s *beSubmit) gate(any) {
	b := s.b
	if b.e.dead || b.e.epoch != s.epoch {
		s.sq, s.done, s.submitted = nil, nil, nil
		b.submitFree = append(b.submitFree, s)
		return // crash swallowed the submission; host timeout covers it
	}
	if b.gateClosed {
		ev := b.e.env.PooledEvent()
		ev.AddCallback(s.gateFn)
		b.gateWait = append(b.gateWait, ev)
		return
	}
	sq := b.ioSQs[s.qhint%len(b.ioSQs)]
	s.sq = sq
	sq.slots.AcquireCB(s.slotFn)
}

func (s *beSubmit) slot(any) {
	b, sq := s.b, s.sq
	if b.e.dead || b.e.epoch != s.epoch {
		sq.slots.Release()
		s.sq, s.done, s.submitted = nil, nil, nil
		b.submitFree = append(b.submitFree, s)
		return // the slot wait spanned a crash; hand the slot straight back
	}
	cid := b.allocCID()
	cmd := s.cmd
	cmd.CID = cid
	cmd.NSID = b.backendNSID
	b.inflight++
	if b.e.met != nil {
		if s.skey != 0 {
			if b.e.tl {
				// Same measurement window as the classic submitIO: submit
				// entry to backend SQ slot grant.
				b.e.met.SpanWait(s.skey, timeline.WaitBackend, int64(b.e.env.Now()-s.t0))
			}
			b.e.met.SpanAlias(s.skey, obs.DevKey(b.dev.Config().Serial, sq.id, cid))
		}
		b.mInflight.Inc(b.e.env.Now())
		b.mSubmits.Inc()
	}
	b.pending[cid] = b.getPending(sq, s.done)
	submitted := s.submitted
	s.sq, s.done, s.submitted = nil, nil, nil
	b.submitFree = append(b.submitFree, s)
	b.push(sq, cmd)
	submitted()
}

func (b *backend) getPending(sq *beSQ, done func(nvme.Completion)) *bePending {
	if n := len(b.pendFree); n > 0 {
		p := b.pendFree[n-1]
		b.pendFree = b.pendFree[:n-1]
		p.sq, p.done = sq, done
		return p
	}
	return &bePending{sq: sq, done: done}
}

// doneMsg is a pooled deferred completion delivery: the CompleteLatency
// stage of backend.complete without a per-completion closure. It is used on
// classic and fast paths alike (the Schedule position is unchanged).
type doneMsg struct {
	b   *backend
	fn  func(nvme.Completion)
	cpl nvme.Completion
	run func()
}

func (b *backend) scheduleDone(fn func(nvme.Completion), cpl nvme.Completion) {
	var m *doneMsg
	if n := len(b.doneFree); n > 0 {
		m = b.doneFree[n-1]
		b.doneFree = b.doneFree[:n-1]
	} else {
		m = &doneMsg{b: b}
		m.run = m.fire
	}
	m.fn, m.cpl = fn, cpl
	b.e.env.Schedule(b.e.cfg.CompleteLatency, m.run)
}

func (m *doneMsg) fire() {
	b, fn, cpl := m.b, m.fn, m.cpl
	m.fn = nil
	b.doneFree = append(b.doneFree, m)
	fn(cpl)
}

// feIRQ is a pooled deferred front-end MSI post (classic and fast paths).
type feIRQ struct {
	e   *Engine
	run func()
	fid pcie.FuncID
	vec int
}

func (e *Engine) postIRQ(delay sim.Time, fid pcie.FuncID, vec int) {
	var m *feIRQ
	if n := len(e.feIRQFree); n > 0 {
		m = e.feIRQFree[n-1]
		e.feIRQFree = e.feIRQFree[:n-1]
	} else {
		m = &feIRQ{e: e}
		m.run = m.fire
	}
	m.fid, m.vec = fid, vec
	e.env.Schedule(delay, m.run)
}

func (m *feIRQ) fire() {
	e, fid, vec := m.e, m.fid, m.vec
	e.feIRQFree = append(e.feIRQFree, m)
	e.hostPort.RaiseIRQ(fid, vec)
}
