package engine

import (
	"testing"
	"testing/quick"

	"bmstore/internal/pcie"
)

func TestGlobalPRPLayout(t *testing.T) {
	// Fig. 4b: function ID in bits [54:48], list flag in bit 55.
	v := EncodeGlobalPRP(0x55, 0x1234000, true)
	if v&HostAddrMask != 0x1234000 {
		t.Fatalf("address bits %#x", v&HostAddrMask)
	}
	if (v>>48)&0x7F != 0x55 {
		t.Fatalf("function bits %#x", (v>>48)&0x7F)
	}
	if v&(1<<55) == 0 {
		t.Fatal("list flag not set")
	}
}

func TestGlobalPRPRoundTripProperty(t *testing.T) {
	f := func(fn uint8, addr uint64, list bool) bool {
		id := pcie.FuncID(fn % 128)
		a := addr & HostAddrMask
		g := EncodeGlobalPRP(id, a, list)
		fn2, a2, l2 := DecodeGlobalPRP(g)
		return fn2 == id && a2 == a && l2 == list && !IsChipMem(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalPRPRejectsWideAddress(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("49-bit address accepted")
		}
	}()
	EncodeGlobalPRP(0, 1<<48, false)
}

func TestChipMemFlag(t *testing.T) {
	a := uint64(0x8000) | ChipMemFlag
	if !IsChipMem(a) {
		t.Fatal("flag not detected")
	}
	if ChipAddr(a) != 0x8000 {
		t.Fatalf("chip addr %#x", ChipAddr(a))
	}
	if IsChipMem(0x8000) {
		t.Fatal("plain address detected as chip memory")
	}
}
