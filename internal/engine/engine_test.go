package engine

import (
	"bytes"
	"fmt"
	"testing"

	"bmstore/internal/hostmem"
	"bmstore/internal/nvme"
	"bmstore/internal/pcie"
	"bmstore/internal/sim"
	"bmstore/internal/ssd"
)

// feHarness drives the engine's front-end functions the way a host NVMe
// driver would: rings in host memory, doorbells, MSI completions.
type feHarness struct {
	t    *testing.T
	env  *sim.Env
	mem  *hostmem.Memory
	eng  *Engine
	port *pcie.Port

	qs      map[qkey]*hq
	nextCID uint16
	waiting map[uint16]*sim.Event
}

type qkey struct {
	fn  pcie.FuncID
	qid uint16
	cq  bool
}

type hq struct {
	ring  nvme.Ring
	tail  uint32 // SQ use
	head  uint32 // CQ use
	phase bool
}

// testChunk is a small chunk size so chunk-boundary behaviour is testable.
const testChunk = 1 << 20 // 1 MB = 256 LBAs

func newFeHarness(t *testing.T, numSSDs int) *feHarness {
	return newFeHarnessWith(t, numSSDs, nil)
}

func newFeHarnessWith(t *testing.T, numSSDs int, mutate func(*Config)) *feHarness {
	return newFeHarnessEnv(t, sim.NewEnv(11), numSSDs, mutate)
}

// newFeHarnessEnv builds the harness on a caller-provided environment, so
// tests can arm observers (fault injectors, tracers) before any component
// caches its pointers.
func newFeHarnessEnv(t *testing.T, env *sim.Env, numSSDs int, mutate func(*Config)) *feHarness {
	mem := hostmem.New(512 << 20)
	root := pcie.NewRoot(env, mem)

	cfg := DefaultConfig()
	cfg.ChunkBytes = testChunk
	cfg.BackendQDepth = 256
	if mutate != nil {
		mutate(&cfg)
	}
	eng := New(env, cfg)

	h := &feHarness{
		t: t, env: env, mem: mem, eng: eng,
		qs:      make(map[qkey]*hq),
		waiting: make(map[uint16]*sim.Event),
	}
	hostLink := pcie.NewLink(env, 16, 250*sim.Nanosecond)
	h.port = pcie.Connect(env, hostLink, root, h.irq, nil, eng)
	eng.AttachHost(h.port)

	for i := 0; i < numSSDs; i++ {
		cfg := ssd.P4510(fmt.Sprintf("SN%03d", i))
		cfg.CapacityBytes = 64 << 20 // 64 MB toy disk = 64 chunks
		dev := ssd.New(env, cfg)
		eng.AttachBackend(dev, pcie.NewLink(env, 4, 300*sim.Nanosecond))
	}
	var startErr error
	done := env.Go("start", func(p *sim.Proc) { startErr = eng.Start(p) })
	env.Run()
	if !done.Done().Processed() || startErr != nil {
		t.Fatalf("engine start failed: %v", startErr)
	}
	return h
}

// irq is shared across functions: vector scans that function's CQ.
func (h *feHarness) irq(fn pcie.FuncID, vec int) {
	cq := h.qs[qkey{fn, uint16(vec), true}]
	if cq == nil {
		return
	}
	for {
		var b [nvme.CQESize]byte
		h.mem.Read(cq.ring.SlotAddr(cq.head), b[:])
		cpl := nvme.DecodeCompletion(&b)
		if cpl.Phase != cq.phase {
			return
		}
		cq.head = cq.ring.Next(cq.head)
		if cq.head == 0 {
			cq.phase = !cq.phase
		}
		if ev := h.waiting[cpl.CID]; ev != nil {
			delete(h.waiting, cpl.CID)
			ev.Trigger(cpl)
		}
	}
}

// initFunc brings up function fn: admin queues plus I/O queue pair 1.
func (h *feHarness) initFunc(p *sim.Proc, fn pcie.FuncID, depth uint32) {
	asq := h.mem.AllocPages(1)
	acq := h.mem.AllocPages(1)
	h.qs[qkey{fn, 0, false}] = &hq{ring: nvme.Ring{Base: asq, Entries: 32, EntrySz: nvme.SQESize}}
	h.qs[qkey{fn, 0, true}] = &hq{ring: nvme.Ring{Base: acq, Entries: 32, EntrySz: nvme.CQESize}, phase: true}
	h.port.MMIOWrite(fn, regAQAOff, 31<<16|31)
	h.port.MMIOWrite(fn, regASQOff, asq)
	h.port.MMIOWrite(fn, regACQOff, acq)
	h.port.MMIOWrite(fn, regCCOff, 1)
	cqb := h.mem.AllocPages(int((depth*nvme.CQESize + 4095) / 4096))
	sqb := h.mem.AllocPages(int((depth*nvme.SQESize + 4095) / 4096))
	cpl := h.submit(p, fn, 0, nvme.Command{Opcode: nvme.AdminCreateIOCQ, PRP1: cqb, CDW10: (depth-1)<<16 | 1})
	if cpl.Status.IsError() {
		h.t.Fatalf("fn%d create cq: %#x", fn, cpl.Status)
	}
	cpl = h.submit(p, fn, 0, nvme.Command{Opcode: nvme.AdminCreateIOSQ, PRP1: sqb, CDW10: (depth-1)<<16 | 1, CDW11: 1 << 16})
	if cpl.Status.IsError() {
		h.t.Fatalf("fn%d create sq: %#x", fn, cpl.Status)
	}
	h.qs[qkey{fn, 1, false}] = &hq{ring: nvme.Ring{Base: sqb, Entries: depth, EntrySz: nvme.SQESize}}
	h.qs[qkey{fn, 1, true}] = &hq{ring: nvme.Ring{Base: cqb, Entries: depth, EntrySz: nvme.CQESize}, phase: true}
}

func (h *feHarness) submit(p *sim.Proc, fn pcie.FuncID, qid uint16, cmd nvme.Command) nvme.Completion {
	return p.Wait(h.submitAsync(fn, qid, cmd)).(nvme.Completion)
}

func (h *feHarness) submitAsync(fn pcie.FuncID, qid uint16, cmd nvme.Command) *sim.Event {
	sq := h.qs[qkey{fn, qid, false}]
	h.nextCID++
	cmd.CID = h.nextCID
	var b [nvme.SQESize]byte
	cmd.Encode(&b)
	h.mem.Write(sq.ring.SlotAddr(sq.tail), b[:])
	sq.tail = sq.ring.Next(sq.tail)
	ev := h.env.NewEvent()
	h.waiting[cmd.CID] = ev
	h.port.MMIOWrite(fn, nvme.SQDoorbell(qid), uint64(sq.tail))
	return ev
}

func (h *feHarness) rw(p *sim.Proc, fn pcie.FuncID, op uint8, slba uint64, data []byte, buf uint64) nvme.Completion {
	p1, p2, _ := nvme.BuildPRPs(h.mem, buf, len(data))
	if op == nvme.IOWrite {
		h.mem.Write(buf, data)
	}
	cmd := nvme.Command{Opcode: op, NSID: FrontNSID, PRP1: p1, PRP2: p2}
	cmd.SetSLBA(slba)
	cmd.SetNLB(uint32(len(data) / ssd.BlockSize))
	return h.submit(p, fn, 1, cmd)
}

func (h *feHarness) run(fn func(p *sim.Proc)) {
	h.env.Go("test", fn)
	h.env.Run()
}

func TestFrontEndIdentify(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, err := h.eng.CreateNamespace("vol0", 4*testChunk, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Bind(5, ns); err != nil {
		t.Fatal(err)
	}
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 5, 64)
		page := h.mem.AllocPages(1)
		cpl := h.submit(p, 5, 0, nvme.Command{Opcode: nvme.AdminIdentify, PRP1: page, CDW10: nvme.CNSController})
		if cpl.Status.IsError() {
			t.Fatalf("identify: %#x", cpl.Status)
		}
		buf := make([]byte, nvme.IdentifyPageSize)
		h.mem.Read(page, buf)
		ic := nvme.DecodeIdentifyController(buf)
		if ic.Serial != "BMS-VF005" || ic.NN != 1 {
			t.Fatalf("identify %+v", ic)
		}
		if ic.TotalCapBytes != 4*testChunk {
			t.Fatalf("capacity %d", ic.TotalCapBytes)
		}
		cpl = h.submit(p, 5, 0, nvme.Command{Opcode: nvme.AdminIdentify, NSID: FrontNSID, PRP1: page, CDW10: nvme.CNSNamespace})
		if cpl.Status.IsError() {
			t.Fatalf("identify ns: %#x", cpl.Status)
		}
		h.mem.Read(page, buf)
		in := nvme.DecodeIdentifyNamespace(buf)
		if in.NSZE != 4*testChunk/ssd.BlockSize {
			t.Fatalf("nsze %d", in.NSZE)
		}
	})
}

func TestHostAdminCannotManageNamespaces(t *testing.T) {
	h := newFeHarness(t, 1)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		cpl := h.submit(p, 0, 0, nvme.Command{Opcode: nvme.AdminNSManagement})
		if cpl.Status != nvme.StatusInvalidOpcode {
			t.Fatalf("NS management from host returned %#x", cpl.Status)
		}
		cpl = h.submit(p, 0, 0, nvme.Command{Opcode: nvme.AdminFWCommit})
		if cpl.Status != nvme.StatusInvalidOpcode {
			t.Fatalf("FW commit from host returned %#x", cpl.Status)
		}
	})
}

func TestFullPathDataIntegrity(t *testing.T) {
	h := newFeHarness(t, 2)
	// Namespace striped across both SSDs in 1 MB chunks.
	ns, err := h.eng.CreateNamespace("vol0", 8*testChunk, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Bind(0, ns); err != nil {
		t.Fatal(err)
	}
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		data := make([]byte, 16*ssd.BlockSize) // 64K, exercises PRP lists
		for i := range data {
			data[i] = byte(i*13 + 7)
		}
		// Write straddling the chunk 0 -> chunk 1 boundary (LBA 248..264),
		// which also crosses SSDs.
		buf := h.mem.AllocPages(16)
		if cpl := h.rw(p, 0, nvme.IOWrite, 248, data, buf); cpl.Status.IsError() {
			t.Fatalf("write: %#x", cpl.Status)
		}
		rbuf := h.mem.AllocPages(16)
		if cpl := h.rw(p, 0, nvme.IORead, 248, make([]byte, len(data)), rbuf); cpl.Status.IsError() {
			t.Fatalf("read: %#x", cpl.Status)
		}
		got := make([]byte, len(data))
		h.mem.Read(rbuf, got)
		if !bytes.Equal(got, data) {
			t.Fatal("data corrupted through the BM-Store path")
		}
		// The two SSDs must each have seen part of the write.
		r0, w0 := h.eng.BackendStats(0)
		r1, w1 := h.eng.BackendStats(1)
		if w0.Ops == 0 || w1.Ops == 0 {
			t.Fatalf("write not split across SSDs: %d/%d", w0.Ops, w1.Ops)
		}
		if r0.Ops == 0 || r1.Ops == 0 {
			t.Fatalf("read not split across SSDs: %d/%d", r0.Ops, r1.Ops)
		}
	})
}

func TestNamespaceIsolation(t *testing.T) {
	h := newFeHarness(t, 1)
	nsA, _ := h.eng.CreateNamespace("a", testChunk, []int{0})
	nsB, _ := h.eng.CreateNamespace("b", testChunk, []int{0})
	h.eng.Bind(0, nsA)
	h.eng.Bind(1, nsB)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		h.initFunc(p, 1, 64)
		bufA := h.mem.AllocPages(1)
		data := bytes.Repeat([]byte{0xAA}, ssd.BlockSize)
		if cpl := h.rw(p, 0, nvme.IOWrite, 3, data, bufA); cpl.Status.IsError() {
			t.Fatalf("write: %#x", cpl.Status)
		}
		// Same host LBA through function 1 must read zeros, not fn0 data.
		rbuf := h.mem.AllocPages(1)
		if cpl := h.rw(p, 1, nvme.IORead, 3, make([]byte, ssd.BlockSize), rbuf); cpl.Status.IsError() {
			t.Fatalf("read: %#x", cpl.Status)
		}
		got := make([]byte, ssd.BlockSize)
		h.mem.Read(rbuf, got)
		for _, b := range got {
			if b != 0 {
				t.Fatal("namespace isolation violated")
			}
		}
	})
}

func TestUnboundFunctionRejectsIO(t *testing.T) {
	h := newFeHarness(t, 1)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 7, 64)
		buf := h.mem.AllocPages(1)
		cpl := h.rw(p, 7, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf)
		if cpl.Status != nvme.StatusInvalidNamespace {
			t.Fatalf("status %#x", cpl.Status)
		}
	})
}

func TestFrontEndLBAOutOfRange(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		cpl := h.rw(p, 0, nvme.IORead, 255, make([]byte, 2*ssd.BlockSize), buf)
		if cpl.Status != nvme.StatusLBAOutOfRange {
			t.Fatalf("status %#x", cpl.Status)
		}
	})
}

func TestFlushFansOut(t *testing.T) {
	h := newFeHarness(t, 2)
	ns, _ := h.eng.CreateNamespace("v", 2*testChunk, []int{0, 1})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		cmd := nvme.Command{Opcode: nvme.IOFlush, NSID: FrontNSID}
		cpl := h.submit(p, 0, 1, cmd)
		if cpl.Status.IsError() {
			t.Fatalf("flush: %#x", cpl.Status)
		}
	})
}

func TestQoSThrottlesNamespace(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	ns.SetQoS(QoSLimits{IOPS: 5000})
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		start := p.Now()
		done := 0
		// 4 submitters hammering QD1 each for 100 ms.
		stop := start + 100*sim.Millisecond
		for i := 0; i < 4; i++ {
			h.env.Go("job", func(jp *sim.Proc) {
				for jp.Now() < stop {
					h.rw(jp, 0, nvme.IORead, uint64(done%256), make([]byte, ssd.BlockSize), buf)
					if jp.Now() <= stop {
						done++
					}
				}
			})
		}
		p.Sleep(110 * sim.Millisecond)
		iops := float64(done) / 0.1
		// 5000 IOPS cap (+burst slack); without QoS this rig does >40K.
		if iops > 6500 {
			t.Fatalf("QoS leak: %.0f IOPS against a 5000 cap", iops)
		}
		if iops < 3500 {
			t.Fatalf("QoS overthrottle: %.0f IOPS", iops)
		}
	})
}

func TestQuiesceHoldsIOWithoutErrors(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		var errs, completions int
		stopAt := p.Now() + 40*sim.Millisecond
		h.env.Go("job", func(jp *sim.Proc) {
			for jp.Now() < stopAt {
				cpl := h.rw(jp, 0, nvme.IORead, 1, make([]byte, ssd.BlockSize), buf)
				if cpl.Status.IsError() {
					errs++
				}
				completions++
			}
		})
		p.Sleep(5 * sim.Millisecond)
		h.eng.QuiesceBackend(p, 0)
		quiescedAt := p.Now()
		// The last drained command's CQE is still in flight to the host
		// (CQE DMA + MSI); let it land before snapshotting.
		p.Sleep(100 * sim.Microsecond)
		before := completions
		p.Sleep(10 * sim.Millisecond)
		if completions != before {
			t.Fatalf("I/O completed while quiesced (%d -> %d)", before, completions)
		}
		if err := h.eng.ResumeBackend(p, 0); err != nil {
			t.Fatal(err)
		}
		p.Sleep(30 * sim.Millisecond)
		if errs != 0 {
			t.Fatalf("%d I/O errors across quiesce", errs)
		}
		if completions <= before {
			t.Fatal("I/O did not resume after gate reopened")
		}
		_ = quiescedAt
	})
}

func TestHotUpgradeThroughEngine(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		// Quiesce, push firmware via the engine's admin passthrough,
		// commit, wait for reset, resume.
		h.eng.QuiesceBackend(p, 0)
		img := append([]byte("VDV10199"), make([]byte, 4088)...)
		cpl := h.eng.BackendAdmin(p, 0, nvme.Command{
			Opcode: nvme.AdminFWDownload, CDW10: uint32(len(img)/4) - 1,
		}, img, nil)
		if cpl.Status.IsError() {
			t.Fatalf("fw download: %#x", cpl.Status)
		}
		cpl = h.eng.BackendAdmin(p, 0, nvme.Command{Opcode: nvme.AdminFWCommit, CDW10: 3 << 3}, nil, nil)
		if cpl.Status.IsError() {
			t.Fatalf("fw commit: %#x", cpl.Status)
		}
		p.Sleep(sim.Millisecond) // let the reset window begin
		h.eng.WaitBackendReset(p, 0)
		if err := h.eng.ResumeBackend(p, 0); err != nil {
			t.Fatal(err)
		}
		if got := h.eng.BackendFirmware(0); got != "VDV10199" {
			t.Fatalf("firmware %q", got)
		}
		// Data path must still work after queue rebuild.
		buf := h.mem.AllocPages(1)
		if cpl := h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf); cpl.Status.IsError() {
			t.Fatalf("post-upgrade read: %#x", cpl.Status)
		}
	})
}

func TestHotPlugReplacePreservesFrontEnd(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		data := bytes.Repeat([]byte{0x5A}, ssd.BlockSize)
		h.rw(p, 0, nvme.IOWrite, 0, data, buf)

		h.eng.QuiesceBackend(p, 0)
		cfg := ssd.P4510("SN-NEW")
		cfg.CapacityBytes = 64 << 20
		newDev := ssd.New(h.env, cfg)
		if err := h.eng.ReplaceBackend(p, 0, newDev, pcie.NewLink(h.env, 4, 300*sim.Nanosecond)); err != nil {
			t.Fatal(err)
		}
		if err := h.eng.ResumeBackend(p, 0); err != nil {
			t.Fatal(err)
		}
		// Front-end namespace identity survives; no re-enumeration needed.
		rbuf := h.mem.AllocPages(1)
		cpl := h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), rbuf)
		if cpl.Status.IsError() {
			t.Fatalf("read after replace: %#x", cpl.Status)
		}
		got := make([]byte, 1)
		h.mem.Read(rbuf, got)
		if got[0] != 0 {
			t.Fatal("new device should start empty")
		}
		if h.eng.BackendDevice(0).Config().Serial != "SN-NEW" {
			t.Fatal("backend not replaced")
		}
	})
}

func TestIOCountersExposedToMonitor(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("vol-7", 4*testChunk, []int{0})
	h.eng.Bind(3, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 3, 64)
		buf := h.mem.AllocPages(1)
		for i := 0; i < 5; i++ {
			h.rw(p, 3, nvme.IOWrite, uint64(i), make([]byte, ssd.BlockSize), buf)
		}
		h.rw(p, 3, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf)
		c, ok := h.eng.Counters(3)
		if !ok {
			t.Fatal("no counters for bound function")
		}
		if c.WriteOps != 5 || c.ReadOps != 1 || c.Namespace != "vol-7" {
			t.Fatalf("counters %+v", c)
		}
		if c.WriteBytes != 5*ssd.BlockSize {
			t.Fatalf("write bytes %d", c.WriteBytes)
		}
		if _, ok := h.eng.Counters(9); ok {
			t.Fatal("counters for unbound function")
		}
	})
}

func TestEngineAddsAboutThreeMicroseconds(t *testing.T) {
	// Compare QD1 4K read latency through the engine against the raw SSD
	// figure (~72.5us at device level in the ssd package tests): the
	// engine should add roughly 3us (Table V).
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("v", 4*testChunk, []int{0})
	h.eng.Bind(0, ns)
	h.run(func(p *sim.Proc) {
		h.initFunc(p, 0, 64)
		buf := h.mem.AllocPages(1)
		h.rw(p, 0, nvme.IORead, 0, make([]byte, ssd.BlockSize), buf) // warm up
		start := p.Now()
		const n = 20
		for i := 0; i < n; i++ {
			h.rw(p, 0, nvme.IORead, uint64(i), make([]byte, ssd.BlockSize), buf)
		}
		avg := float64(p.Now()-start) / n / 1000
		if avg < 71 || avg > 80 {
			t.Fatalf("engine-path QD1 read %.1fus, want ~73-78", avg)
		}
	})
}

func TestNamespaceAllocationErrors(t *testing.T) {
	h := newFeHarness(t, 1)
	if _, err := h.eng.CreateNamespace("z", 0, []int{0}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := h.eng.CreateNamespace("z", testChunk, nil); err == nil {
		t.Fatal("no backends accepted")
	}
	if _, err := h.eng.CreateNamespace("z", testChunk, []int{5}); err == nil {
		t.Fatal("bad backend accepted")
	}
	// 8 rows x 8 entries = 64 chunks max per namespace.
	if _, err := h.eng.CreateNamespace("z", 65*testChunk, []int{0}); err == nil {
		t.Fatal("oversized namespace accepted")
	}
	// Exhaust the 64-chunk toy disk, then fail.
	a, err := h.eng.CreateNamespace("a", 64*testChunk, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.eng.CreateNamespace("b", testChunk, []int{0}); err == nil {
		t.Fatal("overcommit accepted")
	}
	if err := h.eng.DestroyNamespace(a); err != nil {
		t.Fatal(err)
	}
	if _, err := h.eng.CreateNamespace("b", testChunk, []int{0}); err != nil {
		t.Fatalf("chunks not released: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	h := newFeHarness(t, 1)
	ns, _ := h.eng.CreateNamespace("a", testChunk, []int{0})
	ns2, _ := h.eng.CreateNamespace("b", testChunk, []int{0})
	if err := h.eng.Bind(0, ns); err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Bind(0, ns2); err == nil {
		t.Fatal("double bind on function accepted")
	}
	if err := h.eng.Bind(1, ns); err == nil {
		t.Fatal("double bind of namespace accepted")
	}
	if err := h.eng.DestroyNamespace(ns); err == nil {
		t.Fatal("destroyed a bound namespace")
	}
	h.eng.Unbind(0)
	if err := h.eng.DestroyNamespace(ns); err != nil {
		t.Fatal(err)
	}
}
