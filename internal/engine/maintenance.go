package engine

import (
	"fmt"

	"bmstore/internal/nvme"
	"bmstore/internal/pcie"
	"bmstore/internal/sim"
	"bmstore/internal/ssd"
	"bmstore/internal/stats"
)

// This file is the engine's maintenance surface: the operations the
// BMS-Controller drives over the AXI bus — quiesce/resume for hot-upgrade,
// backend replacement for hot-plug, admin passthrough for firmware and
// health commands, and the I/O-monitor counter registers.

// QuiesceBackend closes the submission gate of backend idx and waits until
// every in-flight command on it has completed. Host I/O touching the SSD
// is held in the engine (the saved I/O context); nothing errors.
func (e *Engine) QuiesceBackend(p *sim.Proc, idx int) {
	e.backends[idx].closeGate(p)
}

// ResumeBackend reopens the gate. If the SSD went through a controller
// reset while quiesced (firmware activation), or a previous resume failed
// partway through bring-up, the adaptor rebuilds its queues first — the
// "reload I/O context" step. On error the gate stays closed so the caller
// can retry; host I/O keeps waiting rather than failing.
func (e *Engine) ResumeBackend(p *sim.Proc, idx int) error {
	b := e.backends[idx]
	if !b.dev.Ready() || !b.ready {
		b.freeRings()
		b.ready = false
		if err := b.init(p); err != nil {
			return err
		}
	}
	b.openGate()
	return nil
}

// BackendReady reports whether backend idx is initialised and serving.
func (e *Engine) BackendReady(idx int) bool {
	b := e.backends[idx]
	return b.ready && b.dev.Ready() && !b.gateClosed
}

// ReplaceBackend swaps the physical SSD behind backend idx (hot-plug). The
// gate must already be closed (QuiesceBackend). Front-end identities and
// the namespace chunk maps are preserved; the new device starts empty.
func (e *Engine) ReplaceBackend(p *sim.Proc, idx int, dev *ssd.SSD, link *pcie.Link) error {
	b := e.backends[idx]
	if !b.gateClosed {
		return fmt.Errorf("engine: backend %d must be quiesced before replacement", idx)
	}
	if b.inflight != 0 {
		return fmt.Errorf("engine: backend %d still has %d commands in flight", idx, b.inflight)
	}
	b.dev = dev
	b.port = pcie.Connect(e.env, link, backendTarget{e}, func(fn pcie.FuncID, vec int) {
		b.onIRQ(vec)
	}, nil, dev)
	dev.Attach(b.port)
	b.pending = make(map[uint16]*bePending)
	b.freeRings()
	b.ready = false
	keep := b.chunks // chunk allocations survive the swap
	if err := b.init(p); err != nil {
		return err
	}
	b.chunks = keep
	return nil
}

// BackendAdmin submits one admin command to backend idx on behalf of the
// BMS-Controller (firmware download/commit, log pages, …). payloadOut, when
// non-nil, receives a 4K data page the command writes; payloadIn, when
// non-nil, supplies a data page the command reads.
func (e *Engine) BackendAdmin(p *sim.Proc, idx int, cmd nvme.Command, payloadIn []byte, payloadOut []byte) nvme.Completion {
	b := e.backends[idx]
	var page uint64
	if payloadIn != nil || payloadOut != nil {
		page = e.allocChipPage()
		defer e.freeChipPages([]uint64{page})
		if payloadIn != nil {
			e.chip.Write(page, payloadIn)
		}
		cmd.PRP1 = page | ChipMemFlag
	}
	cpl := b.adminCmd(p, cmd)
	if payloadOut != nil {
		e.chip.Read(page, payloadOut)
	}
	return cpl
}

// BackendFirmware returns the live firmware revision of backend idx.
func (e *Engine) BackendFirmware(idx int) string { return e.backends[idx].dev.FirmwareVersion() }

// WaitBackendReset blocks until the SSD behind backend idx finishes its
// current reset window (used after a firmware commit).
func (e *Engine) WaitBackendReset(p *sim.Proc, idx int) {
	ev := e.env.NewEvent()
	e.backends[idx].dev.NotifyResetDone(func() { ev.Trigger(nil) })
	p.Wait(ev)
}

// --- I/O monitor registers ---

// IOCounters is the monitor-visible counter block for one function.
type IOCounters struct {
	Fn          pcie.FuncID
	Namespace   string
	ReadOps     uint64
	ReadBytes   uint64
	WriteOps    uint64
	WriteBytes  uint64
	ReadLatP99  int64 // ns
	WriteLatP99 int64
}

// Counters snapshots the I/O counters of function fn; ok is false when no
// namespace is bound.
func (e *Engine) Counters(fn pcie.FuncID) (IOCounters, bool) {
	if int(fn) >= len(e.funcs) {
		return IOCounters{}, false
	}
	f := e.funcs[fn]
	if f.ns == nil {
		return IOCounters{}, false
	}
	return IOCounters{
		Fn:          fn,
		Namespace:   f.ns.Name,
		ReadOps:     f.ns.ReadStats.Ops,
		ReadBytes:   f.ns.ReadStats.Bytes,
		WriteOps:    f.ns.WriteStats.Ops,
		WriteBytes:  f.ns.WriteStats.Bytes,
		ReadLatP99:  f.ns.ReadStats.Lat.Percentile(0.99),
		WriteLatP99: f.ns.WriteStats.Lat.Percentile(0.99),
	}, true
}

// BackendStats returns the device-level counters of backend idx.
func (e *Engine) BackendStats(idx int) (read, write stats.IOStats) {
	d := e.backends[idx].dev
	return d.ReadStats, d.WriteStats
}
