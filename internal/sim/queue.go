package sim

// Queue is a FIFO channel between simulation processes, equivalent to a
// SimPy Store. A zero capacity means unbounded. Items are delivered in
// strict insertion order; blocked getters are served in arrival order.
type Queue[T any] struct {
	env     *Env
	items   []T
	cap     int
	getters []*Event // each fires with the delivered item
	putters []*putWait[T]
	closed  bool
}

type putWait[T any] struct {
	item T
	ev   *Event
}

// NewQueue returns a queue bound to env. capacity <= 0 means unbounded.
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v, blocking the calling process while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	if q.cap > 0 && len(q.items) >= q.cap && len(q.getters) == 0 {
		w := &putWait[T]{item: v, ev: q.env.NewEvent()}
		q.putters = append(q.putters, w)
		p.Wait(w.ev)
		return
	}
	q.deliver(v)
}

// TryPut appends v without blocking; it reports false if the queue is full.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap && len(q.getters) == 0 {
		return false
	}
	q.deliver(v)
	return true
}

// deliver hands v to a waiting getter or buffers it.
func (q *Queue[T]) deliver(v T) {
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.Trigger(v)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	if len(q.items) > 0 {
		return q.pop()
	}
	ev := q.env.NewEvent()
	q.getters = append(q.getters, ev)
	v := p.Wait(ev)
	return v.(T)
}

// TryGet removes the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.pop(), true
}

// GetEvent returns an event that fires with the next available item,
// consuming it. Useful with WaitAny to select over multiple queues.
func (q *Queue[T]) GetEvent() *Event {
	ev := q.env.NewEvent()
	if len(q.items) > 0 {
		ev.Trigger(q.pop())
		return ev
	}
	q.getters = append(q.getters, ev)
	return ev
}

func (q *Queue[T]) pop() T {
	v := q.items[0]
	q.items = q.items[1:]
	// Admit one blocked putter now that space freed up.
	if len(q.putters) > 0 && (q.cap <= 0 || len(q.items) < q.cap) {
		w := q.putters[0]
		q.putters = q.putters[1:]
		q.items = append(q.items, w.item)
		w.ev.Trigger(nil)
	}
	return v
}
