package sim

import "testing"

func TestQueueGetEventImmediate(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 0)
	q.TryPut(42)
	ev := q.GetEvent()
	if !ev.Processed() && !ev.Triggered() {
		t.Fatal("event on non-empty queue not triggered")
	}
	var got any
	env.Go("w", func(p *Proc) { got = p.Wait(ev) })
	env.Run()
	if got != 42 {
		t.Fatalf("got %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("item not consumed")
	}
}

func TestQueueGetEventDeferred(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env, 0)
	ev := q.GetEvent()
	var got any
	env.Go("w", func(p *Proc) { got = p.Wait(ev) })
	env.Go("producer", func(p *Proc) {
		p.Sleep(5)
		q.Put(p, "late")
	})
	env.Run()
	if got != "late" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueSelectAcrossTwoQueues(t *testing.T) {
	env := NewEnv(1)
	a := NewQueue[int](env, 0)
	b := NewQueue[int](env, 0)
	var winner any
	env.Go("selector", func(p *Proc) {
		ea, eb := a.GetEvent(), b.GetEvent()
		won := p.WaitAny(ea, eb)
		winner = won.Value()
	})
	env.Go("feeder", func(p *Proc) {
		p.Sleep(3)
		b.Put(p, 7)
	})
	env.Run()
	if winner != 7 {
		t.Fatalf("winner %v", winner)
	}
	env.Shutdown()
}

func TestShutdownIsIdempotent(t *testing.T) {
	env := NewEnv(1)
	env.Go("stuck", func(p *Proc) { p.Wait(env.NewEvent()) })
	env.Run()
	env.Shutdown()
	env.Shutdown() // second call must be a no-op
	if env.Blocked() != 0 {
		t.Fatal("still blocked")
	}
}

func TestRunUntilEventStopsExactly(t *testing.T) {
	env := NewEnv(1)
	var after bool
	target := env.Timeout(10, nil)
	env.Schedule(20, func() { after = true })
	env.RunUntilEvent(target)
	if after {
		t.Fatal("event beyond target processed")
	}
	if env.Now() != 10 {
		t.Fatalf("clock %d", env.Now())
	}
	env.Run()
	if !after {
		t.Fatal("remaining event lost")
	}
}
