package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Rand returns a deterministic pseudo-random stream derived from the
// environment seed and the given name. Distinct names yield independent
// streams, so adding a new random consumer never perturbs existing ones —
// the property that keeps experiments reproducible as the model grows.
func (e *Env) Rand(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}

// Pacer meters a flow to a byte-per-second rate over virtual time. It is the
// bandwidth-regulator primitive used for PCIe links and SSD internal buses:
// each transfer reserves the next free slot on the wire and the caller
// sleeps until its last byte would have left.
type Pacer struct {
	env  *Env
	bps  float64 // bytes per second
	free Time    // next time the wire is free
}

// NewPacer returns a pacer with the given capacity in bytes per second.
func NewPacer(env *Env, bytesPerSecond float64) *Pacer {
	if bytesPerSecond <= 0 {
		panic("sim: pacer rate must be positive")
	}
	return &Pacer{env: env, bps: bytesPerSecond}
}

// Rate returns the configured bytes-per-second capacity.
func (pc *Pacer) Rate() float64 { return pc.bps }

// Reserve books n bytes on the wire and returns the virtual time at which
// the transfer completes. It never blocks; combine with Proc.Sleep or
// Env.Schedule to model the elapsed transfer.
func (pc *Pacer) Reserve(n int64) Time {
	now := pc.env.now
	start := pc.free
	if start < now {
		start = now
	}
	dur := Time(math.Round(float64(n) / pc.bps * 1e9))
	if dur < 1 {
		dur = 1
	}
	pc.free = start + dur
	return pc.free
}

// Transfer books n bytes and blocks the calling process until the transfer
// completes.
func (pc *Pacer) Transfer(p *Proc, n int64) {
	done := pc.Reserve(n)
	d := done - pc.env.now
	if d > 0 {
		p.Sleep(d)
	}
}

// Backlog returns how far in the future the wire is currently booked.
func (pc *Pacer) Backlog() Time {
	if pc.free <= pc.env.now {
		return 0
	}
	return pc.free - pc.env.now
}
