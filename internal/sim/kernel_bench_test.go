package sim

import (
	"testing"

	"bmstore/internal/obs"
)

// BenchmarkSchedulerThroughput measures the raw per-event cost of the
// scheduler's hot loop: Schedule -> queue -> fire, with no processes
// involved. 64 concurrent callback chains keep the event queue deep enough
// that heap reorganisation cost shows up, the way it does under a real
// multi-device simulation. One benchmark op is one fired event.
func BenchmarkSchedulerThroughput(b *testing.B) {
	const chains = 64
	env := NewEnv(1)
	fired := 0
	scheduled := 0
	var tick func()
	tick = func() {
		fired++
		if scheduled < b.N {
			scheduled++
			env.Schedule(100*Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < chains && scheduled < b.N; i++ {
		scheduled++
		env.Schedule(Time(i), tick)
	}
	env.Run()
	b.StopTimer()
	if fired != scheduled {
		b.Fatalf("fired %d of %d scheduled events", fired, scheduled)
	}
}

// BenchmarkSchedulerMetricsOnThroughput is BenchmarkSchedulerThroughput with
// a metrics registry attached: the kernel's counters are plain scalar
// increments cached at SetMetrics time, so enabling observability must keep
// the fire loop allocation-free. Guarded by the same bench-gate baseline.
func BenchmarkSchedulerMetricsOnThroughput(b *testing.B) {
	const chains = 64
	env := NewEnv(1)
	env.SetMetrics(obs.New(obs.Options{}))
	fired := 0
	scheduled := 0
	var tick func()
	tick = func() {
		fired++
		if scheduled < b.N {
			scheduled++
			env.Schedule(100*Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < chains && scheduled < b.N; i++ {
		scheduled++
		env.Schedule(Time(i), tick)
	}
	env.Run()
	b.StopTimer()
	if fired != scheduled {
		b.Fatalf("fired %d of %d scheduled events", fired, scheduled)
	}
	if got := env.Metrics().Component("sim").Counter("events_fired").Value(); got != uint64(fired) {
		b.Fatalf("events_fired counter %d, fired %d", got, fired)
	}
}

// BenchmarkProcessSleepThroughput measures the per-event cost when every
// event resumes a blocked process: the goroutine-handoff path plus the
// timeout-event machinery behind Proc.Sleep. One op is one completed sleep.
func BenchmarkProcessSleepThroughput(b *testing.B) {
	const procs = 16
	env := NewEnv(1)
	per := b.N / procs
	extra := b.N % procs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < procs; i++ {
		n := per
		if i < extra {
			n++
		}
		env.Go("sleeper", func(p *Proc) {
			for j := 0; j < n; j++ {
				p.Sleep(100 * Nanosecond)
			}
		})
	}
	env.Run()
}
