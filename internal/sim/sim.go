// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel in the style of SimPy. The entire BM-Store reproduction
// runs on this kernel: hardware latencies and bandwidths are modelled in
// virtual time, so microsecond-scale device behaviour can be reproduced
// faithfully regardless of host speed.
//
// Concurrency model: simulation processes are goroutines, but exactly one
// goroutine (either the scheduler or a single process) runs at any moment.
// Control is handed off explicitly through channels, so simulation state
// never needs locking and event ordering is fully deterministic: events fire
// in (time, sequence) order.
//
// An Env is strictly single-threaded; parallelism in this codebase lives
// *between* environments, never inside one. Independent rigs each own an Env
// and may run on separate OS threads concurrently (see
// internal/experiments's worker pool), which is why the kernel holds no
// package-level mutable state.
package sim

import (
	"fmt"
	"sort"

	"bmstore/internal/fault"
	"bmstore/internal/obs"
	"bmstore/internal/trace"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time = int64

// Convenient duration units for virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Go, and drive it with Run or
// RunUntil. An Env must not be shared between operating-system threads other
// than through the process mechanism.
type Env struct {
	now   Time
	queue eventQueue
	seq   uint64

	yield chan struct{} // signalled by a process when it blocks or exits
	live  map[*Proc]struct{}

	seed    int64
	procSeq uint64
	tracer  *trace.Tracer
	faults  *fault.Injector

	// fastOK enables the data-path fast path (see FastPath). It defaults
	// to true and exists so A/B tests and CLIs can force the classic
	// process-based path on an otherwise eligible environment.
	fastOK bool

	// nEvents counts queue entries fired since the environment was
	// created. It is always maintained (one add per event) so the host
	// driver can report events-per-I/O without a metrics registry.
	nEvents uint64

	// met is the metrics registry; the kernel counters below are cached
	// instrument pointers (nil when metrics are off, making each
	// observation point a single nil check — obs instruments are
	// nil-receiver-safe, the same zero-overhead discipline as the tracer).
	met      *obs.Registry
	cEvents  *obs.Counter
	cSpawns  *obs.Counter
	cResumes *obs.Counter

	// evFree recycles kernel-internal one-shot events (Sleep timers,
	// process-start events). Only events the kernel itself created and that
	// never escape to user code are pooled; see pooledEvent.
	evFree []*Event
}

// NewEnv returns a fresh environment at time 0 with the given base RNG seed.
// The seed feeds the per-name deterministic streams returned by Rand.
func NewEnv(seed int64) *Env {
	return &Env{
		yield:  make(chan struct{}),
		live:   make(map[*Proc]struct{}),
		seed:   seed,
		fastOK: true,
	}
}

// SetFastPath enables or disables the event-fused I/O fast path on an
// otherwise eligible environment. Like the observers, components consult
// FastPath at construction time, so call this before building anything on
// the environment. The fast path never changes virtual-time behaviour —
// disabling it exists for A/B verification of exactly that property.
func (e *Env) SetFastPath(on bool) { e.fastOK = on }

// FastPath reports whether data-path components may use their fused
// callback-chain fast path instead of spawning a process per command. It is
// false only when a tracer or a fault injector is attached: the fast path
// is hop-for-hop timing-identical to the classic path but emits no
// spawn/resume trace records, so traced (digest) runs and faulted runs take
// the classic path and stay byte-identical to their committed artifacts.
//
// A metrics registry — including sampled request timelines and worst-K tail
// forensics (obs.Options.Timeline) — deliberately does NOT gate the fast
// path: observation is passive (never schedules events), both paths carry
// the same instrumentation points, and the always-on telemetry contract is
// that we can observe the exact configuration we benchmark. The A/B
// equivalence tests in fastpath_metrics_ab_test.go pin this down.
func (e *Env) FastPath() bool { return e.fastOK && e.tracer == nil && e.faults == nil }

// Events returns the number of queue entries fired so far — the kernel-level
// cost measure behind the driver's events-per-I/O accounting.
func (e *Env) Events() uint64 { return e.nEvents }

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetTracer attaches a determinism tracer to the environment. The scheduler
// emits process-spawn, event-fire, resume and abort records into it; model
// components cache the pointer at construction for their own instrumentation
// points, so attach the tracer before building anything on the environment.
// Pass nil to detach.
func (e *Env) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// Tracer returns the attached tracer, or nil when tracing is off.
func (e *Env) Tracer() *trace.Tracer { return e.tracer }

// SetMetrics attaches a metrics registry to the environment. Like the
// tracer, model components cache the pointer (or instruments created from
// it) at construction, so attach the registry before building anything on
// the environment. Metrics are strictly passive — the registry never
// schedules events — so attaching one cannot change simulated behaviour or
// trace digests. Pass nil to detach.
func (e *Env) SetMetrics(m *obs.Registry) {
	e.met = m
	kernel := m.Component("sim") // nil registry -> nil component -> nil counters
	e.cEvents = kernel.Counter("events_fired")
	e.cSpawns = kernel.Counter("procs_spawned")
	e.cResumes = kernel.Counter("proc_resumes")
}

// Metrics returns the attached registry, or nil when metrics are off.
func (e *Env) Metrics() *obs.Registry { return e.met }

// SetFaults attaches a fault injector to the environment. Model components
// cache the pointer at their injection points during construction — the
// same discipline as the tracer and metrics registry — so attach the
// injector before building anything on the environment. A nil injector (the
// default) costs one pointer compare per potential injection point. The
// injector is stateful and belongs to exactly this environment; build a
// fresh one per rig from a shared rule list.
func (e *Env) SetFaults(in *fault.Injector) { e.faults = in }

// Faults returns the attached fault injector, or nil when injection is off.
func (e *Env) Faults() *fault.Injector { return e.faults }

// scheduled is an entry in the event queue. Exactly one of fn and ev is set:
// fn is the Schedule fast path (a bare callback with no Event allocated),
// ev everything else.
type scheduled struct {
	at  Time
	seq uint64
	fn  func()
	ev  *Event
}

// eventQueue is a 4-ary min-heap of scheduled entries ordered by (at, seq).
// It is hand-rolled on the concrete type rather than container/heap: the
// interface-based heap boxes every pushed entry into an `any` (one heap
// allocation per event) and pays dynamic dispatch per comparison, which
// together dominated the scheduler's hot loop. The wider fan-out also
// shallows the tree: a 4-ary heap does ~half the levels of a binary heap on
// sift-down, trading slightly more comparisons per level for far fewer
// swaps — a win for the short-lived entries a simulation queue churns.
type eventQueue struct {
	s []scheduled
}

// before reports whether a fires before b: (time, sequence) order. seq is
// unique per push, so this is a total order and pop order is deterministic.
func (q *eventQueue) before(a, b *scheduled) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(it scheduled) {
	q.s = append(q.s, it)
	i := len(q.s) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !q.before(&q.s[i], &q.s[parent]) {
			break
		}
		q.s[i], q.s[parent] = q.s[parent], q.s[i]
		i = parent
	}
}

func (q *eventQueue) pop() scheduled {
	s := q.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = scheduled{} // release fn/ev references
	q.s = s[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftDown(i int) {
	s := q.s
	n := len(s)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.before(&s[c], &s[min]) {
				min = c
			}
		}
		if !q.before(&s[min], &s[i]) {
			return
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

func (e *Env) push(at Time, ev *Event) {
	e.seq++
	e.queue.push(scheduled{at: at, seq: e.seq, ev: ev})
}

// Schedule runs fn in scheduler context after delay. It is the lightweight,
// callback-style alternative to starting a process; device models use it for
// internal pipeline stages. The callback travels in the queue entry itself —
// no Event is allocated, which makes Schedule the cheapest way to sequence
// virtual-time work.
func (e *Env) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	e.queue.push(scheduled{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue is empty, then returns the final
// virtual time. Processes still blocked on untriggered events remain blocked;
// call Shutdown to unwind them.
func (e *Env) Run() Time { return e.run(-1, nil) }

// RunUntil processes events up to and including virtual time t and then
// returns. The clock is left at t even if the queue drained earlier.
func (e *Env) RunUntil(t Time) Time {
	e.run(t, nil)
	if e.now < t {
		e.now = t
	}
	return e.now
}

// RunUntilEvent processes events until ev has fired (or the queue runs
// dry). Use it to drive a simulation that hosts immortal server processes
// (pollers, monitors) whose periodic timers would keep Run spinning
// forever.
func (e *Env) RunUntilEvent(ev *Event) Time { return e.run(-1, ev) }

// Diagnosis describes why a watched run stopped before its event fired: the
// structured alternative to a hung test. Deadlock means the event queue went
// dry with the workload unfinished — every remaining process is blocked on
// an event nothing will ever trigger. HorizonHit means events were still
// flowing but the workload failed to finish inside the time budget (a
// livelock, or a horizon set too tight).
type Diagnosis struct {
	At         Time // virtual time the watchdog gave up
	HorizonHit bool // true: budget exhausted; false: true deadlock
	Pending    int  // events still queued (0 on a deadlock)
	// Blocked lists the live-but-blocked processes as "id:name", in spawn
	// order — the wait-for picture a deadlocked rig leaves behind.
	Blocked []string
}

// String renders the diagnosis the way a failure report quotes it.
func (d *Diagnosis) String() string {
	kind := "deadlock"
	if d.HorizonHit {
		kind = "horizon"
	}
	return fmt.Sprintf("sim %s at t=%dns: %d events pending, blocked procs %v",
		kind, d.At, d.Pending, d.Blocked)
}

// RunUntilEventWatched is RunUntilEvent with a liveness watchdog: it stops
// as soon as ev fires (returning a nil Diagnosis), the queue drains, or the
// clock passes horizon — the latter two produce a structured Diagnosis
// instead of a hang. The watchdog costs no extra events and is fully
// deterministic: the emitted trace record folds into the digest like any
// other kernel record, so a watched run replays bit-identically.
func (e *Env) RunUntilEventWatched(ev *Event, horizon Time) (Time, *Diagnosis) {
	e.run(horizon, ev)
	if ev.processed {
		return e.now, nil
	}
	d := &Diagnosis{
		At:         e.now,
		HorizonHit: len(e.queue.s) > 0,
		Pending:    len(e.queue.s),
	}
	procs := make([]*Proc, 0, len(e.live))
	for p := range e.live {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		d.Blocked = append(d.Blocked, fmt.Sprintf("%d:%s", p.id, p.name))
	}
	if e.tracer != nil {
		kind := "deadlock"
		if d.HorizonHit {
			kind = "horizon"
		}
		e.tracer.Emit(e.now, "sim", kind, uint64(len(d.Blocked)), uint64(d.Pending), "")
	}
	return e.now, d
}

// run is the scheduler hot loop shared by Run, RunUntil and RunUntilEvent:
// pop in (time, seq) order until the queue drains, the next entry lies
// beyond limit (when limit >= 0), or until has fired (when non-nil).
func (e *Env) run(limit Time, until *Event) Time {
	for len(e.queue.s) > 0 {
		if until != nil && until.processed {
			break
		}
		if limit >= 0 && e.queue.s[0].at > limit {
			break
		}
		it := e.queue.pop()
		if it.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = it.at
		e.nEvents++
		e.cEvents.Inc()
		if e.tracer != nil {
			e.tracer.Emit(e.now, "sim", "fire", it.seq, 0, "")
		}
		if it.fn != nil {
			it.fn()
		} else {
			e.fire(it.ev)
		}
	}
	return e.now
}

// fire marks ev processed, runs callbacks and resumes waiting processes.
func (e *Env) fire(ev *Event) {
	if ev.processed || ev.aborted {
		return
	}
	ev.processed = true
	ev.pending = false
	cbs := ev.callbacks
	ev.callbacks = nil
	for _, cb := range cbs {
		cb(ev.val)
	}
	ws := ev.waiters
	ev.waiters = nil
	for _, p := range ws {
		if p.done {
			continue
		}
		e.resume(p, resumeMsg{val: ev.val, ev: ev})
	}
	if ev.pooled {
		ev.waiters = ws[:0] // keep the capacity across recycles
		e.recycle(ev)
	}
}

// PooledEvent returns a one-shot event from the environment's free list.
// Contract: the event must be triggered exactly once and no reference to it
// may be kept after it fires — the kernel recycles it at the end of fire,
// after callbacks ran and waiters resumed. An event that is abandoned
// (never triggered, or aborted) simply drops out of the pool; that is safe
// but wastes the recycle. Data-path components use this for their
// per-command completion signalling so steady-state I/O allocates nothing.
func (e *Env) PooledEvent() *Event { return e.pooledEvent() }

// pooledEvent returns a recycled kernel-internal event, or a fresh one. The
// caller must guarantee the event never escapes to user code: it is handed
// back to the free list at the end of fire, after its waiters have resumed
// and moved on.
func (e *Env) pooledEvent() *Event {
	if n := len(e.evFree); n > 0 {
		ev := e.evFree[n-1]
		e.evFree = e.evFree[:n-1]
		return ev
	}
	return &Event{env: e, pooled: true}
}

// recycle resets a pooled event (keeping its waiter-slice capacity) and
// returns it to the free list.
func (e *Env) recycle(ev *Event) {
	ev.val = nil
	ev.pending = false
	ev.processed = false
	ev.aborted = false
	ev.callbacks = nil
	ev.waiters = ev.waiters[:0]
	e.evFree = append(e.evFree, ev)
}

type resumeMsg struct {
	val   any
	ev    *Event
	abort bool
}

// resume hands control to process p and blocks until it yields back.
func (e *Env) resume(p *Proc, m resumeMsg) {
	e.cResumes.Inc()
	if e.tracer != nil && !m.abort {
		e.tracer.Emit(e.now, "sim", "resume", p.id, 0, p.name)
	}
	p.resume <- m
	<-e.yield
}

// Blocked reports how many processes are alive but currently blocked. After
// Run returns, a nonzero value means some processes are waiting on events
// that will never fire (often intentional: server loops).
func (e *Env) Blocked() int { return len(e.live) }

// Shutdown aborts every live process: each blocked process's wait panics
// with an internal sentinel that the process wrapper recovers. Use it in
// tests to avoid goroutine leaks from server-style processes. Processes are
// unwound in spawn order, so shutdown — like everything else on the
// environment — is deterministic and safe to include in a trace digest.
func (e *Env) Shutdown() {
	for len(e.live) > 0 {
		procs := make([]*Proc, 0, len(e.live))
		for p := range e.live {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
		for _, p := range procs {
			if _, alive := e.live[p]; !alive {
				continue // unwound as a side effect of an earlier abort
			}
			if e.tracer != nil {
				e.tracer.Emit(e.now, "sim", "abort", p.id, 0, p.name)
			}
			e.resume(p, resumeMsg{abort: true})
		}
	}
}

// Go starts fn as a new simulation process named name. The process begins
// running at the current virtual time, before Go returns to the scheduler...
// precisely: the process is started immediately if called from scheduler
// context, or scheduled for the same timestamp when called from another
// process. Go returns a *Proc handle whose Done event fires when fn returns.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{
		env:    e,
		id:     e.procSeq,
		name:   name,
		resume: make(chan resumeMsg),
		doneEv: e.NewEvent(),
	}
	e.live[p] = struct{}{}
	e.cSpawns.Inc()
	if e.tracer != nil {
		e.tracer.Emit(e.now, "sim", "spawn", p.id, 0, name)
	}
	go func() {
		m := <-p.resume // wait for first activation
		// The completion handoff runs as a deferred function so that it
		// also happens when fn exits via runtime.Goexit — notably when a
		// test calls t.Fatal from inside a simulation process. Without it
		// the scheduler would wait forever for the yield.
		defer func() {
			p.done = true
			delete(e.live, p)
			if !m.abort {
				p.doneEv.Trigger(nil)
			}
			e.yield <- struct{}{}
		}()
		if !m.abort {
			defer func() {
				if r := recover(); r != nil && r != errAborted {
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}()
			fn(p)
		}
	}()
	// Activate via a zero-delay pooled event so start order is deterministic.
	start := e.pooledEvent()
	start.waiters = append(start.waiters, p)
	e.push(e.now, start)
	start.pending = true
	return p
}

var errAborted = fmt.Errorf("sim: process aborted")
