package sim

import (
	"testing"
	"testing/quick"

	"bmstore/internal/trace"
)

func TestTimeoutAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var woke Time = -1
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	env.Run()
	if woke != 5*Microsecond {
		t.Fatalf("woke at %d, want %d", woke, 5*Microsecond)
	}
}

func TestZeroSleepDoesNotAdvance(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		p.Sleep(0)
		if p.Now() != 0 {
			t.Errorf("zero sleep advanced clock to %d", p.Now())
		}
	})
	env.Run()
}

func TestNegativeSleepPanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	failed := false
	env.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				failed = true
				panic(errAborted) // unwind cleanly through the wrapper
			}
		}()
		p.Sleep(-1)
	})
	env.Run()
	if !failed {
		t.Fatal("negative sleep did not panic")
	}
}

func TestEventValuePropagates(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	var got any
	env.Go("waiter", func(p *Proc) { got = p.Wait(ev) })
	env.Go("trigger", func(p *Proc) {
		p.Sleep(3)
		ev.Trigger("hello")
	})
	env.Run()
	if got != "hello" {
		t.Fatalf("got %v, want hello", got)
	}
}

func TestWaitOnProcessedEventReturnsImmediately(t *testing.T) {
	env := NewEnv(1)
	ev := env.Timeout(1, 42)
	var got any
	var at Time
	env.Go("late", func(p *Proc) {
		p.Sleep(10)
		got = p.Wait(ev)
		at = p.Now()
	})
	env.Run()
	if got != 42 || at != 10 {
		t.Fatalf("got %v at %d, want 42 at 10", got, at)
	}
}

func TestTriggerIsIdempotent(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	n := 0
	ev.AddCallback(func(any) { n++ })
	ev.Trigger(1)
	ev.Trigger(2)
	env.Run()
	if n != 1 {
		t.Fatalf("callback ran %d times, want 1", n)
	}
	if ev.Value() != 1 {
		t.Fatalf("value %v, want first trigger's 1", ev.Value())
	}
}

func TestDeterministicOrderingFIFOAtSameTime(t *testing.T) {
	run := func() []int {
		env := NewEnv(7)
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			env.Go("p", func(p *Proc) {
				p.Sleep(5)
				order = append(order, i)
			})
		}
		env.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != i {
			t.Fatalf("order %v not FIFO", a)
		}
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ordering: %v vs %v", a, b)
		}
	}
}

func TestScheduleCallback(t *testing.T) {
	env := NewEnv(1)
	var at Time = -1
	env.Schedule(9, func() { at = env.Now() })
	env.Run()
	if at != 9 {
		t.Fatalf("callback at %d, want 9", at)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	env := NewEnv(1)
	fired := false
	env.Schedule(100, func() { fired = true })
	env.RunUntil(50)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if env.Now() != 50 {
		t.Fatalf("clock %d, want 50", env.Now())
	}
	env.RunUntil(100)
	if !fired {
		t.Fatal("event at limit did not fire on second run")
	}
}

func TestWaitAnyPicksEarliest(t *testing.T) {
	env := NewEnv(1)
	var winner any
	env.Go("p", func(p *Proc) {
		fast := p.Env().Timeout(5, "fast")
		slow := p.Env().Timeout(9, "slow")
		winner = p.WaitAny(slow, fast).Value()
		// After winning, the process must survive the slow event firing.
		p.Sleep(10)
	})
	env.Run()
	if winner != "fast" {
		t.Fatalf("winner %v, want fast", winner)
	}
}

func TestWaitTimeout(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	var ok1, ok2 bool
	env.Go("t1", func(p *Proc) { _, ok1 = p.WaitTimeout(ev, 5) })
	env.Go("t2", func(p *Proc) {
		v, ok := p.WaitTimeout(env.Timeout(2, "x"), 5)
		ok2 = ok && v == "x"
	})
	env.Run()
	if ok1 {
		t.Fatal("timeout path reported success")
	}
	if !ok2 {
		t.Fatal("event-first path reported timeout")
	}
	env.Shutdown()
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 0)
	var got []int
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(1)
		}
	})
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestQueueCapacityBlocksPutter(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 2)
	var thirdPutAt Time = -1
	env.Go("producer", func(p *Proc) {
		q.Put(p, 0)
		q.Put(p, 1)
		q.Put(p, 2) // must block until consumer drains one
		thirdPutAt = p.Now()
	})
	env.Go("consumer", func(p *Proc) {
		p.Sleep(7)
		q.Get(p)
	})
	env.Run()
	if thirdPutAt != 7 {
		t.Fatalf("third put completed at %d, want 7", thirdPutAt)
	}
	if q.Len() != 2 {
		t.Fatalf("queue length %d, want 2", q.Len())
	}
}

func TestQueueHandsItemDirectlyToWaiter(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env, 0)
	var got string
	env.Go("consumer", func(p *Proc) { got = q.Get(p) })
	env.Go("producer", func(p *Proc) {
		p.Sleep(3)
		q.Put(p, "item")
	})
	env.Run()
	if got != "item" {
		t.Fatalf("got %q", got)
	}
	if q.Len() != 0 {
		t.Fatal("item left buffered after direct handoff")
	}
}

func TestTryGetTryPut(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut(1) {
		t.Fatal("TryPut on empty queue failed")
	}
	if q.TryPut(2) {
		t.Fatal("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != 1 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.Go("user", func(p *Proc) {
			r.Use(p, 10, nil)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		env.Go("user", func(p *Proc) {
			r.Use(p, 10, nil)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
	if r.InUse() != 0 {
		t.Fatalf("resource left in use: %d", r.InUse())
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestPacerRate(t *testing.T) {
	env := NewEnv(1)
	pc := NewPacer(env, 1e9) // 1 GB/s => 1 byte per ns
	var done Time
	env.Go("xfer", func(p *Proc) {
		pc.Transfer(p, 4096)
		pc.Transfer(p, 4096)
		done = p.Now()
	})
	env.Run()
	if done != 8192 {
		t.Fatalf("two 4K transfers at 1GB/s finished at %dns, want 8192", done)
	}
}

func TestPacerQueuesConcurrentTransfers(t *testing.T) {
	env := NewEnv(1)
	pc := NewPacer(env, 1e9)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.Go("xfer", func(p *Proc) {
			pc.Transfer(p, 1000)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []Time{1000, 2000, 3000}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish %v, want %v", finish, want)
		}
	}
}

func TestRandStreamsIndependentAndDeterministic(t *testing.T) {
	a1 := NewEnv(42).Rand("ssd0").Int63()
	a2 := NewEnv(42).Rand("ssd0").Int63()
	b := NewEnv(42).Rand("ssd1").Int63()
	c := NewEnv(43).Rand("ssd0").Int63()
	if a1 != a2 {
		t.Fatal("same seed+name produced different streams")
	}
	if a1 == b {
		t.Fatal("different names produced identical streams")
	}
	if a1 == c {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestProcDoneEvent(t *testing.T) {
	env := NewEnv(1)
	p1 := env.Go("worker", func(p *Proc) { p.Sleep(5) })
	var joinedAt Time = -1
	env.Go("joiner", func(p *Proc) {
		p.Wait(p1.Done())
		joinedAt = p.Now()
	})
	env.Run()
	if joinedAt != 5 {
		t.Fatalf("joined at %d, want 5", joinedAt)
	}
}

func TestShutdownUnblocksAll(t *testing.T) {
	env := NewEnv(1)
	for i := 0; i < 5; i++ {
		env.Go("server", func(p *Proc) {
			p.Wait(p.Env().NewEvent()) // never fires
		})
	}
	env.Run()
	if env.Blocked() != 5 {
		t.Fatalf("blocked %d, want 5", env.Blocked())
	}
	env.Shutdown()
	if env.Blocked() != 0 {
		t.Fatalf("blocked after shutdown: %d", env.Blocked())
	}
}

// Property: a pacer transferring k packets of arbitrary sizes finishes
// exactly at ceil-free sum/rate boundaries — total time equals the sum of
// per-packet durations, regardless of arrival pattern at saturation.
func TestPacerConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		env := NewEnv(1)
		pc := NewPacer(env, 1e9)
		var total int64
		var end Time
		env.Go("xfer", func(p *Proc) {
			for _, s := range sizes {
				n := int64(s) + 1
				total += n
				pc.Transfer(p, n)
			}
			end = p.Now()
		})
		env.Run()
		return end == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a capacity-c resource and n unit-time jobs, makespan is
// ceil(n/c) — the resource neither over- nor under-admits.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := int(n8%40) + 1
		c := int(c8%8) + 1
		env := NewEnv(1)
		r := NewResource(env, c)
		for i := 0; i < n; i++ {
			env.Go("job", func(p *Proc) { r.Use(p, 100, nil) })
		}
		end := env.Run()
		want := Time((n + c - 1) / c * 100)
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownWithPendingEvents(t *testing.T) {
	env := NewEnv(1)
	fired := false
	// A callback far in the future plus a proc sleeping toward it: both are
	// still pending when Shutdown runs and must simply be dropped.
	env.Schedule(1e12, func() { fired = true })
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(1e12)
		fired = true
	})
	env.Go("waiter", func(p *Proc) {
		p.Wait(env.NewEvent()) // never fires
	})
	env.RunUntil(1000)
	env.Shutdown()
	if env.Blocked() != 0 {
		t.Fatalf("blocked after shutdown: %d", env.Blocked())
	}
	if fired {
		t.Fatal("pending work ran despite shutdown")
	}
	// Shutdown must be idempotent even with the queue still holding the
	// far-future timer.
	env.Shutdown()
}

func TestShutdownAbortOrderDeterministic(t *testing.T) {
	// Procs are aborted in spawn order regardless of map iteration: with a
	// tracer attached, two identical runs must produce identical digests
	// even when Shutdown reaps many blocked procs.
	digest := func() string {
		tr := trace.NewDigest()
		env := NewEnv(9)
		env.SetTracer(tr)
		for i := 0; i < 32; i++ {
			env.Go("blocked", func(p *Proc) { p.Wait(env.NewEvent()) })
		}
		env.Run()
		env.Shutdown()
		return tr.Digest()
	}
	if a, b := digest(), digest(); a != b {
		t.Fatalf("shutdown order nondeterministic: %s vs %s", a, b)
	}
}
