package sim

// Resource is a counted semaphore over virtual time: a pool of identical
// service units (NAND dies, polling cores, link credits). Acquire blocks the
// calling process until a unit is free; requests are granted FIFO.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []*Event
}

// NewResource returns a resource with capacity units.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, cap: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire obtains one unit, blocking until available. The waiter event is
// pooled: it never escapes this function (Wait's return value travels in the
// resume message, not through the event), so the kernel recycles it the
// moment it fires and a contended Acquire allocates nothing at steady state.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	ev := r.env.pooledEvent()
	r.waiters = append(r.waiters, ev)
	p.Wait(ev)
}

// AcquireCB obtains one unit for callback-chain callers: when a unit is
// immediately free, cb runs synchronously — the same program point where
// Acquire returns without blocking. Otherwise cb runs in scheduler context
// when Release hands this caller a unit, at exactly the queue position where
// Acquire's blocked waiter would have resumed, so mixing AcquireCB and
// Acquire callers on one resource preserves FIFO grant order and timing.
// The waiter event comes from the kernel free list and never escapes, so a
// contended AcquireCB costs no allocation beyond cb itself (callers on the
// fast path pass a callback stored once in a pooled per-command record).
func (r *Resource) AcquireCB(cb func(val any)) {
	if r.inUse < r.cap {
		r.inUse++
		cb(nil)
		return
	}
	ev := r.env.pooledEvent()
	ev.callbacks = append(ev.callbacks, cb)
	r.waiters = append(r.waiters, ev)
}

// TryAcquire obtains a unit only if one is immediately free.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit, waking the oldest waiter if any. The unit is
// transferred directly to the waiter, so capacity accounting stays exact.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	if len(r.waiters) > 0 {
		ev := r.waiters[0]
		r.waiters = r.waiters[1:]
		ev.Trigger(nil) // unit passes to the waiter; inUse unchanged
		return
	}
	r.inUse--
}

// Use runs fn while holding one unit for the given service time: it acquires,
// sleeps d, runs fn (in process context), and releases.
func (r *Resource) Use(p *Proc, d Time, fn func()) {
	r.Acquire(p)
	p.Sleep(d)
	if fn != nil {
		fn()
	}
	r.Release()
}
