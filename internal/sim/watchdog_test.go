package sim

import (
	"strings"
	"testing"

	"bmstore/internal/trace"
)

func TestRunUntilEventWatchedCompletes(t *testing.T) {
	env := NewEnv(1)
	main := env.Go("main", func(p *Proc) { p.Sleep(5 * Millisecond) })
	now, diag := env.RunUntilEventWatched(main.Done(), Second)
	if diag != nil {
		t.Fatalf("unexpected diagnosis: %v", diag)
	}
	if now != 5*Millisecond {
		t.Fatalf("now = %d, want 5ms", now)
	}
}

func TestRunUntilEventWatchedDeadlock(t *testing.T) {
	env := NewEnv(1)
	// Two processes in a classic cyclic wait: each blocks on an event only
	// the other would trigger.
	evA, evB := env.NewEvent(), env.NewEvent()
	env.Go("alice", func(p *Proc) {
		p.Wait(evA)
		evB.Trigger(nil)
	})
	main := env.Go("bob", func(p *Proc) {
		p.Wait(evB)
		evA.Trigger(nil)
	})
	_, diag := env.RunUntilEventWatched(main.Done(), Second)
	if diag == nil {
		t.Fatal("deadlocked run produced no diagnosis")
	}
	if diag.HorizonHit {
		t.Fatalf("deadlock misreported as horizon: %v", diag)
	}
	if diag.Pending != 0 {
		t.Fatalf("deadlock with %d pending events: %v", diag.Pending, diag)
	}
	if len(diag.Blocked) != 2 {
		t.Fatalf("blocked procs = %v, want both", diag.Blocked)
	}
	s := diag.String()
	if !strings.Contains(s, "deadlock") || !strings.Contains(s, "alice") || !strings.Contains(s, "bob") {
		t.Fatalf("diagnosis string %q should name the kind and the blocked processes", s)
	}
	env.Shutdown()
}

func TestRunUntilEventWatchedHorizon(t *testing.T) {
	env := NewEnv(1)
	// A livelocked server: always has a next event, never finishes.
	env.Go("spinner", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
		}
	})
	main := env.Go("main", func(p *Proc) { p.Sleep(10 * Second) })
	_, diag := env.RunUntilEventWatched(main.Done(), 20*Millisecond)
	if diag == nil {
		t.Fatal("over-horizon run produced no diagnosis")
	}
	if !diag.HorizonHit {
		t.Fatalf("horizon stop misreported as deadlock: %v", diag)
	}
	if diag.Pending == 0 {
		t.Fatalf("horizon stop should leave events pending: %v", diag)
	}
	if !strings.Contains(diag.String(), "horizon") {
		t.Fatalf("diagnosis string %q should say horizon", diag)
	}
	env.Shutdown()
}

func TestWatchedDiagnosisIsDigestStable(t *testing.T) {
	run := func() string {
		env := NewEnv(9)
		tr := trace.NewDigest()
		env.SetTracer(tr)
		env.Go("stuck", func(p *Proc) { p.Wait(env.NewEvent()) })
		main := env.Go("main", func(p *Proc) { p.Wait(env.NewEvent()) })
		_, diag := env.RunUntilEventWatched(main.Done(), Second)
		if diag == nil {
			t.Fatal("expected a diagnosis")
		}
		env.Shutdown()
		return tr.Digest()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("watchdog broke determinism: %s vs %s", a, b)
	}
}
