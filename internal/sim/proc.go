package sim

// Proc is a simulation process: sequential code that advances virtual time
// by blocking on events. All Proc methods must be called from within the
// process's own function.
type Proc struct {
	env    *Env
	id     uint64 // spawn sequence number; orders deterministic shutdown
	name   string
	resume chan resumeMsg
	done   bool
	doneEv *Event
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Done returns an event that fires when the process function returns.
func (p *Proc) Done() *Event { return p.doneEv }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// yield hands control back to the scheduler and blocks until resumed.
func (p *Proc) yield() resumeMsg {
	p.env.yield <- struct{}{}
	m := <-p.resume
	if m.abort {
		panic(errAborted)
	}
	return m
}

// Wait blocks until ev fires and returns its value. If ev already fired,
// Wait returns immediately without advancing time.
func (p *Proc) Wait(ev *Event) any {
	if ev.processed {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p)
	return p.yield().val
}

// Sleep advances the process's local time by d. The timer event comes from
// the environment's free list — it never escapes this function, so it is
// recycled as soon as it fires, keeping Sleep allocation-free at steady
// state.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	e := p.env
	ev := e.pooledEvent()
	ev.pending = true
	ev.waiters = append(ev.waiters, p)
	e.push(e.now+d, ev)
	p.yield()
}

// WaitAny blocks until the first of evs fires and returns that event. Events
// that already fired win immediately (earliest in the argument list).
func (p *Proc) WaitAny(evs ...*Event) *Event {
	for _, ev := range evs {
		if ev.processed {
			return ev
		}
	}
	for _, ev := range evs {
		ev.waiters = append(ev.waiters, p)
	}
	m := p.yield()
	// Remove p from the other events' waiter lists so a later firing does
	// not try to resume a process that moved on.
	for _, ev := range evs {
		if ev == m.ev {
			continue
		}
		ev.removeWaiter(p)
	}
	return m.ev
}

// WaitTimeout waits for ev at most d. It returns the event value and true if
// ev fired first, or nil and false on timeout.
func (p *Proc) WaitTimeout(ev *Event, d Time) (any, bool) {
	to := p.env.Timeout(d, nil)
	won := p.WaitAny(ev, to)
	if won == ev {
		to.Abort()
		return ev.val, true
	}
	return nil, false
}

func (ev *Event) removeWaiter(p *Proc) {
	for i, w := range ev.waiters {
		if w == p {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return
		}
	}
}
