package sim

// Event is a one-shot occurrence in virtual time. Processes wait on events;
// callbacks attached with AddCallback run in scheduler context when the
// event fires. An Event carries an arbitrary value from the triggerer to the
// waiters.
type Event struct {
	env       *Env
	val       any
	pending   bool // scheduled on the queue but not yet fired
	processed bool // has fired
	aborted   bool
	pooled    bool // kernel-internal event, recycled after firing
	waiters   []*Proc
	callbacks []func(val any)
}

// NewEvent returns an untriggered event bound to the environment.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Trigger schedules the event to fire at the current virtual time with the
// given value. Triggering an already-triggered event is a no-op, which makes
// completion signalling idempotent.
func (ev *Event) Trigger(val any) {
	ev.TriggerDelayed(0, val)
}

// TriggerDelayed schedules the event to fire after delay.
func (ev *Event) TriggerDelayed(delay Time, val any) {
	if ev.pending || ev.processed {
		return
	}
	ev.val = val
	ev.pending = true
	ev.env.push(ev.env.now+delay, ev)
}

// Abort permanently prevents an untriggered event from firing. Processes
// already waiting stay blocked (use control messages, not Abort, to wake
// them); it mainly stops stale timeouts from running callbacks.
func (ev *Event) Abort() { ev.aborted = true }

// Triggered reports whether the event has been scheduled or has fired.
func (ev *Event) Triggered() bool { return ev.pending || ev.processed }

// Processed reports whether the event has fired.
func (ev *Event) Processed() bool { return ev.processed }

// Value returns the value the event fired with (nil before firing).
func (ev *Event) Value() any { return ev.val }

// AddCallback attaches fn to run in scheduler context when the event fires.
// If the event already fired, fn runs immediately.
func (ev *Event) AddCallback(fn func(val any)) {
	if ev.processed {
		fn(ev.val)
		return
	}
	ev.callbacks = append(ev.callbacks, fn)
}

// Timeout returns an event that fires after delay with value val.
func (e *Env) Timeout(delay Time, val any) *Event {
	ev := e.NewEvent()
	ev.TriggerDelayed(delay, val)
	return ev
}
