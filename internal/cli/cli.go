// Package cli is the single home of the run-options surface shared by the
// simulator's binaries. fiosim, bmstore-bench and the fleet entrypoint all
// expose the same observability and fault-injection flags — tracing,
// metrics, timelines, fault specs, chaos campaigns, the classic-path A/B
// switch and the worker bound — and before this package each binary carried
// its own near-duplicate flag block and wiring. RunOptions registers the
// flags once (identical names, defaults and help text everywhere — a parity
// test pins this), validates the combinations that used to fail silently,
// and Build turns them into a Run: the trace/metrics families plus per-rig
// bmstore.Option slices, so no binary writes the deprecated Config
// observability fields directly.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bmstore"
	"bmstore/internal/fault"
	"bmstore/internal/host"
	"bmstore/internal/obs"
	"bmstore/internal/obs/timeline"
	"bmstore/internal/sim"
	"bmstore/internal/trace"
)

// RunOptions holds the shared flag values. Zero value + RegisterFlags +
// flag.Parse is the expected lifecycle; Validate and Build then check and
// materialise them.
type RunOptions struct {
	Trace       string
	TraceDigest bool
	TraceSHA256 bool // registered separately; not part of the shared set
	Metrics     bool
	MetricsOut  string
	Breakdown   bool
	Timeline    bool
	TimelineOut string
	SampleEvery int
	SlowestK    int
	Classic     bool
	Parallel    int
	Faults      string
	Chaos       string
}

// sharedFlag is one entry of the shared surface; the parity test walks this
// table and asserts both binaries registered exactly it.
type sharedFlag struct {
	name, usage string
}

// sharedFlags is the canonical shared set, in registration order. Changing
// a name or help string here changes every binary at once — which is the
// point.
var sharedFlags = []sharedFlag{
	{"trace", "write a human-readable event trace to this file (- for stderr)"},
	{"trace-digest", "compute and print determinism digests over the run's rigs"},
	{"metrics", "collect metrics and print the per-component summary"},
	{"metrics-out", "write the metrics snapshot to this file (.csv for CSV, otherwise JSON; - for stdout)"},
	{"breakdown", "print the per-stage request latency breakdown table"},
	{"timeline", "record sampled request timelines + worst-K tail forensics and print the tail-attribution summary"},
	{"timeline-out", "write recorded timelines as Chrome/Perfetto trace-event JSON to this file (- for stdout; implies recording)"},
	{"sample", "timeline sampling rate: keep every Nth request (with -timeline)"},
	{"slowest", "retain the K slowest requests' complete timelines (with -timeline)"},
	{"classic", "force the classic process-per-command data path (A/B baseline; output is identical, only wall-clock changes)"},
	{"parallel", "max concurrent rigs (1 = serial)"},
	{"faults", "fault-injection spec, e.g. 'ssd-stall,t=20ms,dur=10ms;media-slow,nth=100,count=-1,dur=2ms' (enables driver timeout/retry recovery)"},
	{"chaos", "run a chaos campaign instead of the workload: 'seed,count' (e.g. '1,20'; count defaults to 1) — seeded fault schedules under a write-then-verify workload, exit 1 on any invariant violation"},
}

// usageOf returns the canonical help text of a shared flag; it panics on an
// unknown name so the table and the registrations cannot drift apart.
func usageOf(name string) string {
	for _, f := range sharedFlags {
		if f.name == name {
			return f.usage
		}
	}
	panic("cli: flag " + name + " missing from sharedFlags")
}

// RegisterFlags registers the shared run-option flags on fs. Every binary
// that runs rigs calls this exactly once, before flag.Parse.
func (o *RunOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.Trace, "trace", "", usageOf("trace"))
	fs.BoolVar(&o.TraceDigest, "trace-digest", false, usageOf("trace-digest"))
	fs.BoolVar(&o.Metrics, "metrics", false, usageOf("metrics"))
	fs.StringVar(&o.MetricsOut, "metrics-out", "", usageOf("metrics-out"))
	fs.BoolVar(&o.Breakdown, "breakdown", false, usageOf("breakdown"))
	fs.BoolVar(&o.Timeline, "timeline", false, usageOf("timeline"))
	fs.StringVar(&o.TimelineOut, "timeline-out", "", usageOf("timeline-out"))
	fs.IntVar(&o.SampleEvery, "sample", 64, usageOf("sample"))
	fs.IntVar(&o.SlowestK, "slowest", 16, usageOf("slowest"))
	fs.BoolVar(&o.Classic, "classic", false, usageOf("classic"))
	fs.IntVar(&o.Parallel, "parallel", runtime.GOMAXPROCS(0), usageOf("parallel"))
	fs.StringVar(&o.Faults, "faults", "", usageOf("faults"))
	fs.StringVar(&o.Chaos, "chaos", "", usageOf("chaos"))
}

// RegisterTraceSHA256 registers fiosim's extra -trace-sha256 switch. It is
// deliberately outside the shared set: the fast 64-bit digest is the
// default everywhere, and only the single-workload binary exposes the
// slower cryptographic variant.
func (o *RunOptions) RegisterTraceSHA256(fs *flag.FlagSet) {
	fs.BoolVar(&o.TraceSHA256, "trace-sha256", false, "use SHA-256 for the digest instead of the fast 64-bit digest")
}

// Validate checks flag combinations. It returns usage errors (callers exit
// 2): today that is the -faults/-chaos conflict — a chaos campaign
// generates its own fault schedules, so an also-supplied -faults spec used
// to be ignored silently — and the -timeline knob sanity checks.
func (o *RunOptions) Validate() error {
	if o.Chaos != "" && o.Faults != "" {
		return fmt.Errorf("-chaos and -faults are mutually exclusive: a chaos campaign generates its own seeded fault schedules, so the -faults spec would be ignored — drop one of the two")
	}
	if o.SampleEvery < 1 {
		return fmt.Errorf("-sample must be >= 1, got %d", o.SampleEvery)
	}
	if o.SlowestK < 0 {
		return fmt.Errorf("-slowest must be >= 0, got %d", o.SlowestK)
	}
	return nil
}

// TimelineOn reports whether timeline recording is requested (explicitly or
// implied by -timeline-out).
func (o *RunOptions) TimelineOn() bool { return o.Timeline || o.TimelineOut != "" }

// Run is the materialised shared wiring of one invocation: the per-rig
// trace and metrics families, the parsed fault schedule, and the opened
// trace-dump destination. Build creates it; Close releases the dump file.
type Run struct {
	Opts    *RunOptions
	Traces  *trace.Set // nil when tracing is off
	Metrics *obs.Set   // nil when metrics/timelines are off
	Rules   []fault.Rule

	dump      *os.File
	dumpOwned bool // false when dump is os.Stderr/os.Stdout
}

// Build materialises the options: parses the fault spec, opens the trace
// dump destination ("-" is stderr, so stdout stays deterministic and
// diffable), and constructs the trace/metrics families. Errors are
// environmental (unparseable spec, uncreatable file); callers exit nonzero.
func (o *RunOptions) Build() (*Run, error) {
	r := &Run{Opts: o}
	if o.Faults != "" {
		rules, err := fault.ParseSpec(o.Faults)
		if err != nil {
			return nil, err
		}
		r.Rules = rules
	}
	if o.Trace != "" {
		if o.Trace == "-" {
			r.dump = os.Stderr
		} else {
			f, err := os.Create(o.Trace)
			if err != nil {
				return nil, err
			}
			r.dump, r.dumpOwned = f, true
		}
	}
	if r.dump != nil || o.TraceDigest || o.TraceSHA256 {
		topts := trace.Options{SHA256: o.TraceSHA256}
		if r.dump != nil {
			topts.Dump = r.dump // destination flag; rigs buffer privately
		}
		r.Traces = trace.NewSet(topts)
	}
	if o.Metrics || o.MetricsOut != "" || o.Breakdown || o.TimelineOn() {
		mopts := obs.Options{SeriesInterval: obs.DefaultSeriesInterval}
		if o.TimelineOn() {
			mopts.Timeline = timeline.Config{SampleEvery: o.SampleEvery, WorstK: o.SlowestK}
		}
		r.Metrics = obs.NewSet(mopts)
	}
	return r, nil
}

// Close releases the trace dump file, if Build opened one.
func (r *Run) Close() error {
	if r.dumpOwned && r.dump != nil {
		return r.dump.Close()
	}
	return nil
}

// RigOptions returns the bmstore.Option slice wiring one named rig: its
// child tracer and metrics registry, the fault schedule, and the
// classic-path override. This is the only way the binaries attach
// observability to a testbed — none of them touches the deprecated Config
// fields.
func (r *Run) RigOptions(rig string) []bmstore.Option {
	var opts []bmstore.Option
	if r.Traces != nil {
		opts = append(opts, bmstore.WithTrace(r.Traces.Tracer(rig)))
	}
	if r.Metrics != nil {
		opts = append(opts, bmstore.WithMetrics(r.Metrics.Registry(rig)))
	}
	if len(r.Rules) > 0 {
		opts = append(opts, bmstore.WithFaults(r.Rules...))
	}
	if r.Opts.Classic {
		opts = append(opts, bmstore.WithClassicPath())
	}
	return opts
}

// Tracer returns the named rig's child tracer, or nil when tracing is off.
// trace.Set hands back the same child for the same name, so this is the
// post-run lookup for per-rig digests.
func (r *Run) Tracer(rig string) *trace.Tracer {
	if r.Traces == nil {
		return nil
	}
	return r.Traces.Tracer(rig)
}

// DriverConfig returns the tenant driver configuration matching the run:
// the default fail-fast driver, or — when faults are armed — one with the
// recovery machinery (command timeout, abort, bounded retry) enabled, so
// transient injected faults are absorbed instead of killing the workload.
func (r *Run) DriverConfig() host.DriverConfig {
	dcfg := host.DefaultDriverConfig()
	if len(r.Rules) > 0 {
		dcfg.CmdTimeout = 5 * sim.Millisecond
		dcfg.MaxRetries = 8
		dcfg.RetryBackoff = 200 * sim.Microsecond
	}
	return dcfg
}

// FlushTrace flushes the buffered per-rig trace dumps to the destination
// opened by Build. No-op when no dump was requested.
func (r *Run) FlushTrace() error {
	if r.Traces == nil || r.dump == nil {
		return nil
	}
	return r.Traces.Flush(r.dump)
}

// WriteMetricsOut exports the metrics snapshot to the -metrics-out path:
// CSV when the name ends in .csv, pretty-printed JSON otherwise, stdout for
// "-". No-op when the flag is unset.
func (r *Run) WriteMetricsOut() error {
	if r.Opts.MetricsOut == "" {
		return nil
	}
	return writeTo(r.Opts.MetricsOut, func(w io.Writer) error {
		if strings.HasSuffix(r.Opts.MetricsOut, ".csv") {
			return r.Metrics.WriteCSV(w)
		}
		return r.Metrics.WriteJSON(w)
	})
}

// WriteTimelineOut exports the recorded timelines as Chrome/Perfetto
// trace-event JSON to the -timeline-out path, stdout for "-". Load the file
// in ui.perfetto.dev or chrome://tracing, or inspect it offline with
// `bmsctl timeline <file>`. No-op when the flag is unset.
func (r *Run) WriteTimelineOut() error {
	if r.Opts.TimelineOut == "" {
		return nil
	}
	return writeTo(r.Opts.TimelineOut, func(w io.Writer) error {
		return r.Metrics.WriteTimeline(w)
	})
}

// WriteTimelineSummary prints the tail-attribution summary of the recorded
// timelines to w.
func (r *Run) WriteTimelineSummary(w io.Writer) error {
	return timeline.WriteSummary(w, r.Metrics.TimelineDumps())
}

// writeTo runs fn against path ("-" = stdout), closing files on the way
// out.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunChaos parses the -chaos spec ("seed,count") and executes the chaos
// campaign: count seeded fault schedules (seed, seed+1, …), each on a fresh
// rig under the write-then-verify workload, with the invariant checker's
// verdict per run. The deterministic report goes to stdout, timing to
// stderr; a failing seed's report line comes with the exact replay
// invocation. The returned code is the process exit status: 0 green, 1
// invariant violation, 2 unparseable spec.
func RunChaos(spec string, parallel int, stdout, stderr io.Writer, wallSecs func() float64) int {
	parts := strings.Split(spec, ",")
	if len(parts) > 2 {
		fmt.Fprintf(stderr, "-chaos wants 'seed,count', got %q\n", spec)
		return 2
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		fmt.Fprintf(stderr, "-chaos seed %q: %v\n", parts[0], err)
		return 2
	}
	count := 1
	if len(parts) == 2 {
		if count, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil || count < 1 {
			fmt.Fprintf(stderr, "-chaos count %q must be a positive integer\n", parts[1])
			return 2
		}
	}
	c := bmstore.RunChaosCampaign(bmstore.ChaosOptions{
		Seed: seed, Runs: count, Parallel: parallel,
	})
	c.WriteReport(stdout)
	if wallSecs != nil {
		fmt.Fprintf(stderr, "(%d chaos runs in %.1fs wall, parallel=%d)\n",
			count, wallSecs(), parallel)
	}
	if !c.OK() {
		return 1
	}
	return 0
}
