package cli

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bmstore"
	"bmstore/internal/sim"
)

// collectFlags registers the shared surface on a fresh FlagSet, as one of
// the binaries would, and returns name -> (usage, default).
func collectFlags(t *testing.T) map[string][2]string {
	t.Helper()
	var o RunOptions
	fs := flag.NewFlagSet("bin", flag.ContinueOnError)
	o.RegisterFlags(fs)
	m := make(map[string][2]string)
	fs.VisitAll(func(f *flag.Flag) { m[f.Name] = [2]string{f.Usage, f.DefValue} })
	return m
}

// TestSharedFlagParity pins the shared run-option surface: every binary
// registering through RunOptions exposes exactly the canonical set, with
// identical help text, and two independent registrations (one per binary)
// cannot diverge.
func TestSharedFlagParity(t *testing.T) {
	fiosim := collectFlags(t)
	bench := collectFlags(t)

	if len(fiosim) != len(sharedFlags) {
		t.Errorf("registered %d flags, canonical set has %d", len(fiosim), len(sharedFlags))
	}
	for _, want := range sharedFlags {
		got, ok := fiosim[want.name]
		if !ok {
			t.Errorf("shared flag -%s not registered", want.name)
			continue
		}
		if got[0] != want.usage {
			t.Errorf("-%s help text drifted:\n got  %q\n want %q", want.name, got[0], want.usage)
		}
	}
	for name, f := range fiosim {
		b, ok := bench[name]
		if !ok {
			t.Fatalf("flag -%s present in one registration but not the other", name)
		}
		if f != b {
			t.Errorf("-%s differs between registrations: %v vs %v", name, f, b)
		}
	}
}

// TestBinariesUseSharedFlagSurface scans the two CLI mains and asserts they
// build their run wiring exclusively through this package: RegisterFlags +
// Validate are called, and none of the shared flag names is re-registered
// locally (which is how the help-text duplication crept in before).
func TestBinariesUseSharedFlagSurface(t *testing.T) {
	for _, rel := range []string{"../../cmd/fiosim/main.go", "../../cmd/bmstore-bench/main.go"} {
		src, err := os.ReadFile(filepath.Clean(rel))
		if err != nil {
			t.Fatalf("read %s: %v", rel, err)
		}
		text := string(src)
		if !strings.Contains(text, "RegisterFlags(flag.CommandLine)") {
			t.Errorf("%s: does not register the shared flag surface via cli.RunOptions.RegisterFlags", rel)
		}
		if !strings.Contains(text, ".Validate()") {
			t.Errorf("%s: does not validate the shared options via cli.RunOptions.Validate", rel)
		}
		for _, f := range sharedFlags {
			re := regexp.MustCompile(`flag\.(String|Bool|Int|Int64|Duration|Float64)(Var)?\(\s*&?\w*,?\s*"` + regexp.QuoteMeta(f.name) + `"`)
			if re.MatchString(text) {
				t.Errorf("%s: registers shared flag -%s locally instead of through internal/cli", rel, f.name)
			}
		}
		// The acceptance criterion behind the redesign: no direct writes to
		// the deprecated Config observability fields anywhere in cmd/.
		for _, field := range []string{".Tracer =", ".Metrics =", ".Faults =", ".DisableFastPath ="} {
			if strings.Contains(text, field) {
				t.Errorf("%s: writes deprecated Config field %q directly; use bmstore.Option wiring", rel, strings.TrimSuffix(field, " ="))
			}
		}
	}
}

// TestFaultsChaosConflict pins the explicit usage error: chaos campaigns
// generate their own fault schedules, so an also-supplied -faults spec must
// be rejected, not silently ignored (which is what fiosim used to do).
func TestFaultsChaosConflict(t *testing.T) {
	o := RunOptions{Chaos: "1,2", Faults: "ssd-stall,t=1ms,dur=1ms", SampleEvery: 64}
	err := o.Validate()
	if err == nil {
		t.Fatal("Validate accepted -chaos together with -faults")
	}
	if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("conflict error should say the flags are mutually exclusive, got: %v", err)
	}
	for _, ok := range []RunOptions{
		{Chaos: "1,2", SampleEvery: 64},
		{Faults: "ssd-stall,t=1ms,dur=1ms", SampleEvery: 64},
		{SampleEvery: 64},
	} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%+v) unexpectedly failed: %v", ok, err)
		}
	}
}

// TestBuildRigOptions exercises the Build -> RigOptions -> testbed chain:
// the composed options must arm tracing, metrics and faults on a real rig
// without any direct Config field writes.
func TestBuildRigOptions(t *testing.T) {
	o := RunOptions{
		TraceDigest: true,
		Metrics:     true,
		Faults:      "media-slow,nth=1,count=-1,dur=1ms",
		SampleEvery: 64,
		SlowestK:    4,
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := o.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Traces == nil || r.Metrics == nil || len(r.Rules) != 1 {
		t.Fatalf("Build wiring incomplete: traces=%v metrics=%v rules=%d", r.Traces, r.Metrics, len(r.Rules))
	}
	if dcfg := r.DriverConfig(); dcfg.MaxRetries == 0 {
		t.Error("faulted run should get the recovering driver config")
	}

	cfg := bmstore.DefaultConfig()
	tb, err := bmstore.NewBMStoreTestbed(cfg, r.RigOptions("rig0")...)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(func(p *sim.Proc) {})
	if tr := r.Tracer("rig0"); tr == nil || tr.Events() == 0 {
		t.Error("rig tracer recorded no events — WithTrace wiring broken")
	}
	if tb.Metrics() == nil {
		t.Error("rig has no metrics registry — WithMetrics wiring broken")
	}
	if tb.Env.Faults() == nil {
		t.Error("rig has no fault injector — WithFaults wiring broken")
	}
}
