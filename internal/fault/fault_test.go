package fault

import (
	"strings"
	"testing"
)

func TestHitNthAndCount(t *testing.T) {
	in := New(Rule{Point: SSDAdmin, Target: "S1", Nth: 3, Count: 2, Status: 0x06})
	var fired []int
	for i := 1; i <= 6; i++ {
		if r := in.Hit(SSDAdmin, "S1", 0); r != nil {
			fired = append(fired, i)
			if r.Status != 0x06 {
				t.Fatalf("rule status = %#x, want 0x06", r.Status)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on ops %v, want [3 4]", fired)
	}
	if in.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", in.Injected())
	}
}

func TestHitDefaultsToSingleShot(t *testing.T) {
	in := New(Rule{Point: SSDAdmin})
	if in.Hit(SSDAdmin, "any", 0) == nil {
		t.Fatal("first op should fire")
	}
	if in.Hit(SSDAdmin, "any", 0) != nil {
		t.Fatal("Count 0 means one firing")
	}
}

func TestHitUnlimitedCount(t *testing.T) {
	in := New(Rule{Point: MCTPRx, Count: -1})
	for i := 0; i < 5; i++ {
		if in.Hit(MCTPRx, "console", 0) == nil {
			t.Fatalf("op %d should fire with Count -1", i)
		}
	}
}

func TestHitArmsAtTime(t *testing.T) {
	in := New(Rule{Point: SSDAdmin, At: 100})
	if in.Hit(SSDAdmin, "S1", 99) != nil {
		t.Fatal("rule fired before At")
	}
	if in.Hit(SSDAdmin, "S1", 100) == nil {
		t.Fatal("rule should fire at At")
	}
}

func TestTargetFilter(t *testing.T) {
	in := New(Rule{Point: SSDAdmin, Target: "S1", Count: -1})
	if in.Hit(SSDAdmin, "S2", 0) != nil {
		t.Fatal("rule fired on wrong target")
	}
	if in.Hit(SSDAdmin, "S1", 0) == nil {
		t.Fatal("rule should fire on its target")
	}
}

func TestHitMediaDieFilter(t *testing.T) {
	in := New(Rule{Point: SSDMediaRead, Die: 3, Count: -1, Status: 0x281})
	if in.HitMedia("S1", 1, 0) != nil {
		t.Fatal("die 1 should not match Die filter 3 (= die 2)")
	}
	if in.HitMedia("S1", 2, 0) == nil {
		t.Fatal("die 2 should match 1-based Die filter 3")
	}
	// Die 0 matches everything.
	in2 := New(Rule{Point: SSDMediaRead, Count: -1})
	if in2.HitMedia("S1", 7, 0) == nil {
		t.Fatal("zero Die should match any die")
	}
}

func TestStallUntil(t *testing.T) {
	in := New(Rule{Point: SSDStall, Target: "S1", At: 100, Duration: 50})
	if end := in.StallUntil(SSDStall, "S1", 99); end != 0 {
		t.Fatalf("stall active before window: end=%d", end)
	}
	if end := in.StallUntil(SSDStall, "S1", 120); end != 150 {
		t.Fatalf("stall end = %d, want 150", end)
	}
	if end := in.StallUntil(SSDStall, "S1", 150); end != 0 {
		t.Fatalf("stall active at window end: end=%d", end)
	}
	if in.Injected() != 1 {
		t.Fatalf("stall window injected = %d, want 1", in.Injected())
	}
}

func TestDropped(t *testing.T) {
	in := New(Rule{Point: SSDDrop, Target: "S1", At: 100})
	if in.Dropped("S1", 50) {
		t.Fatal("dropped before At")
	}
	if in.Dropped("S2", 200) {
		t.Fatal("wrong target dropped")
	}
	if !in.Dropped("S1", 100) || !in.Dropped("S1", 300) {
		t.Fatal("drop should be permanent once armed")
	}
	if in.Injected() != 1 {
		t.Fatalf("drop injected = %d, want 1", in.Injected())
	}
}

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if in.Hit(SSDAdmin, "x", 0) != nil || in.HitMedia("x", 0, 0) != nil {
		t.Fatal("nil injector fired")
	}
	if in.StallUntil(SSDStall, "x", 0) != 0 || in.Dropped("x", 0) {
		t.Fatal("nil injector stalled/dropped")
	}
	if in.Injected() != 0 || in.Rules() != nil {
		t.Fatal("nil injector has state")
	}
}

func TestDeterministicReplay(t *testing.T) {
	rules := []Rule{
		{Point: SSDMediaRead, Nth: 2, Count: 3, Status: 0x82},
		{Point: SSDStall, At: 10, Duration: 5},
		{Point: SSDDrop, Target: "S9", At: 40},
	}
	run := func() []uint64 {
		in := New(rules...)
		var log []uint64
		for now := int64(0); now < 50; now += 5 {
			if in.HitMedia("S1", int(now%4), now) != nil {
				log = append(log, uint64(now)<<8|1)
			}
			if in.StallUntil(SSDStall, "S1", now) > 0 {
				log = append(log, uint64(now)<<8|2)
			}
			if in.Dropped("S9", now) {
				log = append(log, uint64(now)<<8|3)
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("scenario injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d injections", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("ssd-drop,t=20ms,target=PHLJ0000; media-slow,nth=100,count=-1,dur=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if rules[0].Point != SSDDrop || rules[0].At != 20_000_000 || rules[0].Target != "PHLJ0000" {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Point != SSDMediaRead || rules[1].Nth != 100 || rules[1].Count != -1 || rules[1].Duration != 2_000_000 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
}

func TestParseSpecDefaultsAndErrors(t *testing.T) {
	rules, err := ParseSpec("media-err")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Status != 0x281 {
		t.Fatalf("media-err default status = %#x, want 0x281", rules[0].Status)
	}
	rules, err = ParseSpec("admin-err,status=0x82")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Status != 0x82 {
		t.Fatalf("status override = %#x, want 0x82", rules[0].Status)
	}
	for _, bad := range []string{"", "warp-core-breach", "ssd-stall,t=", "ssd-drop,t", "media-err,volume=11"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
}

func TestParseSpecFailuresNameOffendingToken(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []string // substrings the error must contain
	}{
		{"empty", "", []string{"empty spec", "kind"}},
		{"only separators", " ; ;", []string{"empty spec"}},
		{"unknown kind", "warp-core-breach,t=1ms", []string{`"warp-core-breach"`, "valid kinds", "media-corrupt", "torn-write"}},
		{"unknown field", "media-err,volume=11", []string{`"volume"`, "valid fields", "target"}},
		{"bare field", "ssd-drop,t", []string{`"t"`, "key=value"}},
		{"bad duration t", "ssd-stall,t=20x", []string{`"t"`, `"20x"`}},
		{"bad duration dur", "media-slow,dur=fast", []string{`"dur"`, `"fast"`}},
		{"bad nth", "media-err,nth=-3", []string{`"nth"`, `"-3"`}},
		{"bad count", "media-err,count=many", []string{`"count"`, `"many"`}},
		{"bad status", "admin-err,status=0xZZ", []string{`"status"`, `"0xZZ"`}},
		{"status overflow", "admin-err,status=0x10000", []string{`"status"`, `"0x10000"`}},
		{"bad die", "media-err,die=north", []string{`"die"`, `"north"`}},
		{"error in second rule", "media-err;torn-write,t=oops", []string{`"torn-write,t=oops"`, `"oops"`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("spec %q should not parse", tc.spec)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not name token %q", err, want)
				}
			}
		})
	}
}

func TestParseSpecDataHazardKinds(t *testing.T) {
	rules, err := ParseSpec("media-corrupt,t=2ms,target=CH0;torn-write,nth=5;misdirected-read,count=-1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{MediaCorrupt, WriteTorn, ReadMisdirect}
	for i, pt := range want {
		if rules[i].Point != pt {
			t.Fatalf("rule %d point = %v, want %v", i, rules[i].Point, pt)
		}
	}
	if rules[0].At != 2_000_000 || rules[0].Target != "CH0" {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if !HasDataHazards(rules) {
		t.Fatal("HasDataHazards should report true")
	}
	benign, err := ParseSpec("media-err;ssd-stall")
	if err != nil {
		t.Fatal(err)
	}
	if HasDataHazards(benign) {
		t.Fatal("HasDataHazards should report false for benign rules")
	}
	for _, pt := range []Point{MediaCorrupt, WriteTorn, ReadMisdirect} {
		if !pt.DataHazard() {
			t.Fatalf("%v should be a data hazard", pt)
		}
	}
	for _, pt := range []Point{SSDMediaRead, SSDDrop, PCIeXfer} {
		if pt.DataHazard() {
			t.Fatalf("%v should not be a data hazard", pt)
		}
	}
}

func TestInjectedBy(t *testing.T) {
	in := New(
		Rule{Point: MediaCorrupt, Count: 2},
		Rule{Point: WriteTorn},
		Rule{Point: SSDStall, At: 0, Duration: 10},
		Rule{Point: SSDDrop, Target: "S1"},
	)
	in.Hit(MediaCorrupt, "S1", 0)
	in.Hit(MediaCorrupt, "S1", 0)
	in.Hit(MediaCorrupt, "S1", 0) // exhausted, no count
	in.Hit(WriteTorn, "S1", 0)
	in.StallUntil(SSDStall, "S1", 5)
	in.Dropped("S1", 0)
	checks := []struct {
		pt   Point
		want uint64
	}{
		{MediaCorrupt, 2}, {WriteTorn, 1}, {SSDStall, 1}, {SSDDrop, 1}, {ReadMisdirect, 0},
	}
	for _, c := range checks {
		if got := in.InjectedBy(c.pt); got != c.want {
			t.Fatalf("InjectedBy(%v) = %d, want %d", c.pt, got, c.want)
		}
	}
	if in.Injected() != 5 {
		t.Fatalf("Injected = %d, want 5", in.Injected())
	}
	var nilIn *Injector
	if nilIn.InjectedBy(MediaCorrupt) != 0 {
		t.Fatal("nil injector InjectedBy should be 0")
	}
}

func TestParseSpecEngineCrash(t *testing.T) {
	rules, err := ParseSpec("engine-crash,t=4ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Point != EngineCrash || rules[0].At != 4_000_000 {
		t.Fatalf("rules = %+v", rules)
	}
	rules, err = ParseSpec("engine-crash,nth=32")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Nth != 32 || rules[0].At != 0 {
		t.Fatalf("nth rule = %+v", rules[0])
	}
	if EngineCrash.String() != "engine-crash" {
		t.Fatalf("String = %q", EngineCrash.String())
	}
	if EngineCrash.DataHazard() {
		t.Fatal("engine-crash is not a data-hazard point")
	}
}

func TestParseSpecRejectsDuplicateRules(t *testing.T) {
	cases := []struct {
		name string
		spec string
		dup  string // "" when the spec must parse
	}{
		{"plain duplicate", "media-err;media-err", `"media-err"`},
		{"duplicate with fields", "ssd-stall,t=2ms,dur=1ms;ssd-stall,t=2ms,dur=1ms", `"ssd-stall,t=2ms,dur=1ms"`},
		{"duplicate after whitespace trim", "ssd-drop,t=1ms; ssd-drop,t=1ms ", `"ssd-drop,t=1ms"`},
		{"triple, first pair reported", "mctp-drop;mctp-drop;mctp-drop", `"mctp-drop"`},
		{"duplicate amid others", "media-err;engine-crash,t=3ms;media-slow,dur=2ms;engine-crash,t=3ms", `"engine-crash,t=3ms"`},
		{"same kind different fields ok", "media-err,nth=1;media-err,nth=2", ""},
		{"same kind different targets ok", "ssd-drop,target=CH0;ssd-drop,target=CH1", ""},
		{"single rule ok", "engine-crash,t=1ms", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if tc.dup == "" {
				if err != nil {
					t.Fatalf("spec %q should parse: %v", tc.spec, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("spec %q should be rejected as a duplicate", tc.spec)
			}
			if !strings.Contains(err.Error(), "duplicate") || !strings.Contains(err.Error(), tc.dup) {
				t.Fatalf("error %q should say duplicate and name token %s", err, tc.dup)
			}
		})
	}
}
