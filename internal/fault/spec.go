package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the command-line fault language used by fiosim -faults:
// semicolon-separated rules, each a kind followed by comma-separated
// key=value fields.
//
//	kind[,t=20ms][,dur=5ms][,nth=50][,count=3][,target=PHLJ0000][,status=0x82][,die=7]
//
// Kinds: media-err, media-slow, admin-err, ssd-stall, ssd-drop,
// pcie-replay, mctp-drop, backend-stall, media-corrupt, torn-write,
// misdirected-read, engine-crash. Times (t, dur) use Go duration syntax and
// are virtual time; status accepts decimal or 0x-hex. A rule token may
// appear at most once: exact duplicates double their firings silently, so
// they are rejected.
//
// Example — drop SSD PHLJ0000 20 ms in, and make every 100th media read on
// any drive take an extra 2 ms:
//
//	ssd-drop,t=20ms,target=PHLJ0000;media-slow,nth=100,count=-1,dur=2ms
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if seen[part] {
			return nil, fmt.Errorf("fault: duplicate rule %q: the same token appears twice in the spec — a repeated rule doubles its firings silently, so drop one copy (or change a field, e.g. count=2, if two firings are meant)", part)
		}
		seen[part] = true
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty spec (want semicolon-separated rules, each \"kind[,key=value...]\")")
	}
	return rules, nil
}

// specKinds maps spec-language kinds to their point and defaults.
var specKinds = map[string]Rule{
	"media-err":     {Point: SSDMediaRead, Status: 0x281}, // unrecovered read error
	"media-slow":    {Point: SSDMediaRead, Duration: int64(time.Millisecond)},
	"admin-err":     {Point: SSDAdmin, Status: 0x06}, // internal error
	"ssd-stall":     {Point: SSDStall, Duration: int64(5 * time.Millisecond)},
	"ssd-drop":      {Point: SSDDrop},
	"pcie-replay":   {Point: PCIeXfer},
	"mctp-drop":     {Point: MCTPRx},
	"backend-stall": {Point: BackendSubmit, Duration: int64(5 * time.Millisecond)},
	// Data-hazard kinds: the command succeeds but the payload is damaged.
	// They require the rig to capture real data (ssd.Config.CaptureData).
	"media-corrupt":    {Point: MediaCorrupt},
	"torn-write":       {Point: WriteTorn},
	"misdirected-read": {Point: ReadMisdirect},
	// Hard engine crash: t= crashes at that virtual instant, nth= on the
	// Nth engine dispatch. Pair with a crash manager (internal/crash /
	// bmstore.WithCrashRecovery) for checkpoint-restore recovery.
	"engine-crash": {Point: EngineCrash},
}

// validKinds returns the spec kinds sorted, for error messages.
func validKinds() string {
	kinds := make([]string, 0, len(specKinds))
	for k := range specKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return strings.Join(kinds, ", ")
}

func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ",")
	kind := strings.TrimSpace(fields[0])
	r, ok := specKinds[kind]
	if !ok {
		return Rule{}, fmt.Errorf("unknown kind %q (valid kinds: %s)", kind, validKinds())
	}
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, v, found := strings.Cut(f, "=")
		if !found {
			return Rule{}, fmt.Errorf("field %q is not key=value", f)
		}
		var err error
		switch k {
		case "t":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				r.At = int64(d)
			}
		case "dur":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				r.Duration = int64(d)
			}
		case "nth":
			r.Nth, err = strconv.ParseUint(v, 10, 64)
		case "count":
			r.Count, err = strconv.Atoi(v)
		case "target":
			r.Target = v
		case "status":
			var st uint64
			if st, err = strconv.ParseUint(v, 0, 16); err == nil {
				r.Status = uint16(st)
			}
		case "die":
			r.Die, err = strconv.Atoi(v)
		default:
			return Rule{}, fmt.Errorf("unknown field %q (valid fields: t, dur, nth, count, target, status, die)", k)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("field %q: bad value %q: %w", k, v, err)
		}
	}
	return r, nil
}
