// Package fault is the testbed's deterministic fault-injection subsystem.
// Faults are declarative schedules — "at virtual time T (or on the Nth
// matching operation), make this component misbehave" — evaluated against
// virtual time and operation order only, never wall clocks or RNGs, so a
// faulted run is exactly as reproducible as a clean one: same seed, same
// rules, same trace digest.
//
// The package follows the same nil-means-free discipline as internal/trace
// and internal/obs: an Injector is attached per rig through
// bmstore.Config.Faults (which hands it to sim.Env before any component is
// built), components cache the pointer at construction, and a nil injector
// costs one pointer compare per potential injection point. Injection points
// live in the components' callers-of-truth (the SSD command pipeline, the
// PCIe port transfer paths, MCTP receive, the engine's backend submitter)
// but the *policy* — what fails, when, how often — lives entirely here, so
// component code never grows scenario-specific branches.
//
// Timestamps are plain int64 nanoseconds rather than sim.Time so this
// package has no simulation dependency and internal/sim can import it (the
// same layering trick internal/obs uses).
package fault

// Point identifies one class of injection point in the testbed.
type Point uint8

// Injection points. Op-triggered points (media, admin, PCIe, MCTP) fire on
// individual matching operations; window points (stalls) are active for a
// [At, At+Duration) interval; SSDDrop arms at At and is permanent — the
// device has been surprise-removed.
const (
	// SSDMediaRead fires on NVM read commands inside the SSD: inject a
	// media status error and/or a latency spike, optionally only on
	// operations landing on one NAND die.
	SSDMediaRead Point = iota
	// SSDAdmin fires on SSD admin commands: inject an admin status error.
	SSDAdmin
	// SSDStall is a window during which the SSD controller stops fetching
	// SQEs (a firmware hiccup); queued commands resume when it ends.
	SSDStall
	// SSDDrop surprise-removes the SSD at time At: doorbells are lost,
	// fetch stops, in-flight completions never post, Ready() goes false.
	SSDDrop
	// PCIeXfer fires on DMA transfers crossing a link: the transaction is
	// replayed, adding Duration (default 1 µs) to its completion time.
	PCIeXfer
	// MCTPRx fires on received MCTP packets: the packet is dropped on the
	// out-of-band management path.
	MCTPRx
	// BackendSubmit is a window during which the engine's backend
	// submitter for the target SSD stalls before pushing commands.
	BackendSubmit
	// MediaCorrupt fires on NVM read commands inside the SSD: the payload
	// returned over DMA has a byte flipped — the command still completes
	// with success, modelling silent media corruption past the device's
	// ECC. Data-hazard point: it needs ssd.Config.CaptureData to bite.
	MediaCorrupt
	// WriteTorn fires on NVM write commands inside the SSD: only the
	// first half of the payload reaches the media, yet the command
	// completes with success — an acknowledged-but-torn write (power-cut
	// tearing past the capacitor-backed cache). Data-hazard point.
	WriteTorn
	// ReadMisdirect fires on NVM read commands inside the SSD: the data
	// returned comes from the neighbouring LBA (an FTL mapping slip), the
	// status is success, and timing is untouched. Data-hazard point.
	ReadMisdirect
	// EngineCrash hard-crashes the BM-Engine card: at time At (or on the
	// Nth engine dispatch when Nth is set) the engine atomically loses its
	// volatile state — in-flight commands vanish without completions,
	// doorbells are ignored, the write-back cache of journaled writes is
	// lost. Recovery (checkpoint restore + journal redo + host re-attach)
	// is driven by internal/crash when the rig arms it; without a crash
	// manager the engine simply stays dead, like SSDDrop.
	EngineCrash
	numPoints
)

// String returns the spec-language name of the point.
func (pt Point) String() string {
	switch pt {
	case SSDMediaRead:
		return "media"
	case SSDAdmin:
		return "admin"
	case SSDStall:
		return "ssd-stall"
	case SSDDrop:
		return "ssd-drop"
	case PCIeXfer:
		return "pcie-replay"
	case MCTPRx:
		return "mctp-drop"
	case BackendSubmit:
		return "backend-stall"
	case MediaCorrupt:
		return "media-corrupt"
	case WriteTorn:
		return "torn-write"
	case ReadMisdirect:
		return "misdirected-read"
	case EngineCrash:
		return "engine-crash"
	}
	return "?"
}

// DataHazard reports whether the point silently damages payload bytes
// instead of surfacing as a status error, stall, or drop. Data-hazard
// rules only bite when the rig captures real data (ssd.Config.CaptureData),
// so configurations are validated up front rather than vacuously passing.
func (pt Point) DataHazard() bool {
	switch pt {
	case MediaCorrupt, WriteTorn, ReadMisdirect:
		return true
	}
	return false
}

// HasDataHazards reports whether any rule in the set is a data-hazard rule.
func HasDataHazards(rules []Rule) bool {
	for _, r := range rules {
		if r.Point.DataHazard() {
			return true
		}
	}
	return false
}

// Rule is one declarative fault. The zero values of the optional fields
// mean "unconstrained": empty Target matches any component of the point's
// class, zero At arms the rule from simulation start, zero Nth fires from
// the first matching operation, zero Count means fire once (use a negative
// Count for "every matching operation"), Die -1 or 0-with-AnyDie matches
// any die.
type Rule struct {
	Point  Point
	Target string // SSD serial, link name, or endpoint name; "" = any
	At     int64  // virtual time (ns) the rule arms
	Nth    uint64 // op-triggered: fire starting at the Nth matching op (1-based) after At
	Count  int    // op-triggered: number of firings (0 = 1, negative = unlimited)
	// Duration is the injected latency for op-triggered points and the
	// window length for stall points (ns).
	Duration int64
	// Status is the NVMe status injected by SSDMediaRead/SSDAdmin rules
	// (raw 15-bit status value; 0 on a media rule means latency-only).
	Status uint16
	// Die restricts SSDMediaRead rules to operations whose first stripe
	// lands on one NAND die, as a 1-based index (Die 1 = die 0); 0 matches
	// every die.
	Die int
}

// ruleState is one rule plus its firing bookkeeping.
type ruleState struct {
	Rule
	seen  uint64 // matching ops observed at/after At
	fired uint64 // times this rule has injected
}

// budget returns how many times the rule may still fire.
func (r *ruleState) exhausted() bool {
	if r.Count < 0 {
		return false
	}
	max := uint64(1)
	if r.Count > 0 {
		max = uint64(r.Count)
	}
	return r.fired >= max
}

// Injector evaluates a rule set. It is stateful (operation counters), so an
// Injector belongs to exactly one rig; build one per environment from a
// shared []Rule. All methods are nil-safe no-ops.
type Injector struct {
	rules    []*ruleState
	injected uint64
	firedBy  [numPoints]uint64
}

// New builds an injector over a copy of rules.
func New(rules ...Rule) *Injector {
	in := &Injector{}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// match reports whether the rule applies to (pt, target) and is armed at
// now. Rules with an empty Target match any target.
func (r *ruleState) match(pt Point, target string, now int64) bool {
	return r.Point == pt && now >= r.At && (r.Target == "" || r.Target == target)
}

// hit implements the op-triggered evaluation shared by Hit and HitMedia.
func (in *Injector) hit(pt Point, target string, die int, now int64) *Rule {
	if in == nil {
		return nil
	}
	var out *Rule
	for _, r := range in.rules {
		if !r.match(pt, target, now) {
			continue
		}
		if pt == SSDMediaRead && r.Die != 0 && r.Die-1 != die {
			continue
		}
		r.seen++
		if r.exhausted() {
			continue
		}
		nth := r.Nth
		if nth == 0 {
			nth = 1
		}
		if r.seen < nth {
			continue
		}
		r.fired++
		in.injected++
		in.firedBy[pt]++
		if out == nil { // first matching rule wins; later ones still count ops
			out = &r.Rule
		}
	}
	return out
}

// Hit evaluates op-triggered rules for one operation at an injection point
// and returns the firing rule, or nil. Each call counts as one matching
// operation for every armed rule of (pt, target).
func (in *Injector) Hit(pt Point, target string, now int64) *Rule {
	return in.hit(pt, target, -1, now)
}

// HitMedia is Hit for SSDMediaRead operations, with die matching: die is
// the NAND die the operation's first stripe lands on.
func (in *Injector) HitMedia(target string, die int, now int64) *Rule {
	return in.hit(SSDMediaRead, target, die, now)
}

// StallUntil returns the end of the latest stall window of (pt, target)
// covering now, or 0 when none is active. The caller sleeps until the
// returned time. A window counts as one injection the first time it is
// observed active.
func (in *Injector) StallUntil(pt Point, target string, now int64) int64 {
	if in == nil {
		return 0
	}
	var end int64
	for _, r := range in.rules {
		if !r.match(pt, target, now) {
			continue
		}
		we := r.At + r.Duration
		if now >= we {
			continue
		}
		if r.fired == 0 {
			r.fired++
			in.injected++
			in.firedBy[pt]++
		}
		if we > end {
			end = we
		}
	}
	return end
}

// Dropped reports whether a surprise-drop rule for target has armed. The
// first positive answer counts as one injection.
func (in *Injector) Dropped(target string, now int64) bool {
	if in == nil {
		return false
	}
	for _, r := range in.rules {
		if r.Point != SSDDrop || !r.match(SSDDrop, target, now) {
			continue
		}
		if r.fired == 0 {
			r.fired++
			in.injected++
			in.firedBy[SSDDrop]++
		}
		return true
	}
	return false
}

// Injected returns how many faults have fired so far.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	return in.injected
}

// InjectedBy returns how many faults have fired at one injection point.
// The per-point split is what lets a chaos invariant checker demand "a
// fired media-corrupt rule must produce a corrupt-read-back violation"
// without parsing the trace.
func (in *Injector) InjectedBy(pt Point) uint64 {
	if in == nil || pt >= numPoints {
		return 0
	}
	return in.firedBy[pt]
}

// Rules returns a copy of the configured rules (without firing state).
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	out := make([]Rule, len(in.rules))
	for i, r := range in.rules {
		out[i] = r.Rule
	}
	return out
}
