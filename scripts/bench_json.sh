#!/usr/bin/env bash
# Machine-readable performance snapshot (`make bench-json`): times the fast
# evaluation sweep serial and parallel, runs the alloc-gated hot-path
# benchmarks, and emits one JSON record. CI uploads the file as an artifact
# next to the figures-gate evidence so every PR carries its own before/after
# numbers; EXPERIMENTS.md quotes the same fields.
#
# Output path: $1, else $BENCH_JSON_OUT, else BENCH_7.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-${BENCH_JSON_OUT:-BENCH_7.json}}
par=${BENCH_PARALLEL:-$(nproc)}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# One binary for both sweep timings so `go run` compile time never pollutes
# the wall-clock numbers.
go build -o "$tmp/bmstore-bench" ./cmd/bmstore-bench

now() { date +%s.%N; }

echo "bench-json: fast sweep, serial" >&2
t0=$(now)
"$tmp/bmstore-bench" -scale fast -parallel 1 > /dev/null 2> /dev/null
t1=$(now)
serial=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.1f", b - a }')

echo "bench-json: fast sweep, parallel=$par" >&2
t0=$(now)
"$tmp/bmstore-bench" -scale fast -parallel "$par" > /dev/null 2> /dev/null
t1=$(now)
parallel=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.1f", b - a }')

echo "bench-json: alloc-gated benchmarks" >&2
# 'Throughput$' covers the kernel scheduler benchmarks (internal/sim) and
# the end-to-end BenchmarkIOPathThroughput (root) — the same set the
# bench-gate pins. One op of the scheduler benchmark is one kernel event,
# so its ns/op is the sweep's ns-per-event figure.
bench=$(go test -run '^$' -bench 'Throughput$' -benchmem ./internal/sim/ .)

ns_per_event=$(printf '%s\n' "$bench" |
	awk 'index($1, "BenchmarkSchedulerThroughput") == 1 { print $3; exit }')

rows=$(printf '%s\n' "$bench" | awk '
	$1 ~ /^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $(NF-1)
	}')

cat > "$out" <<EOF
{
  "pr": 7,
  "generated_by": "scripts/bench_json.sh",
  "sweep": {
    "scale": "fast",
    "serial_wall_s": $serial,
    "parallel_wall_s": $parallel,
    "parallel_workers": $par
  },
  "ns_per_event": $ns_per_event,
  "benchmarks": [
$rows
  ]
}
EOF
echo "bench-json: wrote $out (serial ${serial}s, parallel ${parallel}s @ $par workers)" >&2
cat "$out"
