#!/usr/bin/env bash
# CI smoke for the fleet deployment simulator: a small rolling hot-upgrade
# fleet run twice, serial and parallel. The report (stdout) and the JSON
# export must be byte-identical for any -parallel value, the fleet digest
# must match the committed golden (goldens/fleet_smoke.digest — re-bless by
# running this script with BLESS=1 after an intentional behaviour change),
# the rollout must PASS with zero tenant I/O errors, and the JSON must
# round-trip through the offline viewer (`bmsctl fleet`) to the identical
# report.
set -euo pipefail
cd "$(dirname "$0")/.."

golden=goldens/fleet_smoke.digest
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

ARGS="-fleet 8 -fleet-wave 4 -fleet-seed 1 -scale fast"

# shellcheck disable=SC2086 # ARGS is a deliberate word-split flag list
go run ./cmd/bmstore-bench $ARGS -parallel 1 -fleet-json "$tmp/serial.json" > "$tmp/serial.txt" 2>/dev/null
# shellcheck disable=SC2086
go run ./cmd/bmstore-bench $ARGS -parallel 4 -fleet-json "$tmp/parallel.json" > "$tmp/parallel.txt" 2>/dev/null

if ! cmp -s "$tmp/serial.txt" "$tmp/parallel.txt"; then
	echo "fleet smoke: report diverges between -parallel 1 and -parallel 4" >&2
	diff "$tmp/serial.txt" "$tmp/parallel.txt" >&2 || true
	exit 1
fi
if ! cmp -s "$tmp/serial.json" "$tmp/parallel.json"; then
	echo "fleet smoke: JSON export diverges between -parallel 1 and -parallel 4" >&2
	exit 1
fi
if ! grep -q "verdict: PASS" "$tmp/serial.txt"; then
	echo "fleet smoke: rolling upgrade did not pass the health gate:" >&2
	cat "$tmp/serial.txt" >&2
	exit 1
fi
if ! grep -q "errs 0," "$tmp/serial.txt"; then
	echo "fleet smoke: fleet SLO line reports tenant I/O errors" >&2
	exit 1
fi

digest=$(grep "^fleet digest:" "$tmp/serial.txt" | awk '{print $3}')
if [ "${BLESS:-0}" = "1" ]; then
	echo "$digest" > "$golden"
	echo "fleet smoke: blessed $golden = $digest"
fi
if [ ! -f "$golden" ]; then
	echo "fleet smoke: missing $golden (run with BLESS=1 to create it)" >&2
	exit 1
fi
want=$(cat "$golden")
if [ "$digest" != "$want" ]; then
	echo "fleet smoke: fleet digest drifted:" >&2
	echo "  got  $digest" >&2
	echo "  want $want (goldens/fleet_smoke.digest)" >&2
	echo "An intentional behaviour change is re-blessed with BLESS=1 $0" >&2
	exit 1
fi

# The JSON export must survive the offline round trip: bmsctl fleet
# re-renders the identical report from the exported Result alone.
go run ./cmd/bmsctl fleet "$tmp/serial.json" > "$tmp/viewer.txt"
if ! cmp -s "$tmp/serial.txt" "$tmp/viewer.txt"; then
	echo "fleet smoke: offline viewer report disagrees with the live one" >&2
	diff "$tmp/serial.txt" "$tmp/viewer.txt" >&2 || true
	exit 1
fi

echo "fleet smoke OK (fleet digest $digest)"
