#!/usr/bin/env bash
# Re-bless scripts/bench_allocs_baseline.txt (`make bench-baseline`): rerun
# the gated benchmarks at the gate's own benchtimes and rewrite the baseline
# from what they report. Use after an intentional allocation change — the
# diff the commit carries IS the written justification the baseline header
# asks for.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_allocs_baseline.txt
sim=$(go test -run '^$' -bench 'Throughput$' -benchtime=100x -benchmem ./internal/sim/)
io=$(go test -run '^$' -bench '^BenchmarkIOPath(Throughput|SampledTimeline)$' -benchtime=1000x -benchmem .)

{
	cat <<'EOF'
# allocs/op ceilings for the hot-path benchmarks, checked by
# scripts/check_bench_allocs.sh (make bench-gate, CI).
#
# The event free-list and the Schedule callback fast path make the kernel's
# steady state allocation-free, and the fused I/O path pools every carrier
# (commands, CQEs, IRQ posts, PRP segments), so the end-to-end
# BenchmarkIOPathThroughput is pinned at 0 allocs/op too — and so is its
# always-on-telemetry variant BenchmarkIOPathSampledTimeline, where every
# request carries a pooled timeline and 1-in-64 are retained. At the gate's
# short benchtimes one-time warm-up (proc stacks, free-list priming) still
# shows through for the process benchmark: 101 B/op rounds to 1 alloc/op.
# Raising these numbers needs a written justification; regenerate with
# `make bench-baseline`.
EOF
	printf '%s\n%s\n' "$sim" "$io" | awk '
		$1 ~ /^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			print name, $(NF-1)
		}'
} > "$baseline"
echo "bench-baseline: wrote $baseline:"
cat "$baseline"
