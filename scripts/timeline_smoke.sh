#!/usr/bin/env bash
# CI smoke for the always-on telemetry layer: run fiosim with timeline
# recording (1-in-64 sampling + worst-16 forensics) twice, serial and
# parallel. The Perfetto trace export must be byte-identical for any
# -parallel value, match the committed golden digest
# (goldens/timeline_smoke.sha256 — re-bless by running this script with
# BLESS=1 after an intentional timing or format change), and parse cleanly
# through the offline viewer (`bmsctl timeline`), whose summary must agree
# with the in-run one.
set -euo pipefail
cd "$(dirname "$0")/.."

golden=goldens/timeline_smoke.sha256
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

ARGS="-scheme bmstore -rw randrw -bs 4096 -iodepth 16 -numjobs 2 -runtime 30ms -runs 2 -sample 64 -slowest 16"

# shellcheck disable=SC2086 # ARGS is a deliberate word-split flag list
go run ./cmd/fiosim $ARGS -parallel 1 -timeline -timeline-out "$tmp/serial.json" > "$tmp/serial.txt" 2>/dev/null
# shellcheck disable=SC2086
go run ./cmd/fiosim $ARGS -parallel 2 -timeline -timeline-out "$tmp/parallel.json" > "$tmp/parallel.txt" 2>/dev/null

if ! cmp -s "$tmp/serial.json" "$tmp/parallel.json"; then
	echo "timeline smoke: Perfetto export diverges between -parallel 1 and -parallel 2" >&2
	exit 1
fi
if ! cmp -s "$tmp/serial.txt" "$tmp/parallel.txt"; then
	echo "timeline smoke: stdout (results + summary) diverges between -parallel 1 and -parallel 2" >&2
	diff "$tmp/serial.txt" "$tmp/parallel.txt" >&2 || true
	exit 1
fi

digest=$(sha256sum "$tmp/serial.json" | awk '{print $1}')
if [ "${BLESS:-0}" = "1" ]; then
	echo "$digest" > "$golden"
	echo "timeline smoke: blessed $golden = $digest"
fi
if [ ! -f "$golden" ]; then
	echo "timeline smoke: missing $golden (run with BLESS=1 to create it)" >&2
	exit 1
fi
want=$(cat "$golden")
if [ "$digest" != "$want" ]; then
	echo "timeline smoke: trace digest drifted:" >&2
	echo "  got  $digest" >&2
	echo "  want $want (goldens/timeline_smoke.sha256)" >&2
	echo "An intentional timing or format change is re-blessed with BLESS=1 $0" >&2
	exit 1
fi

# The exported trace must survive the offline round trip: bmsctl timeline
# reparses it and rebuilds the identical tail-attribution summary fiosim
# printed from the live recorders.
go run ./cmd/bmsctl timeline "$tmp/serial.json" 0 > "$tmp/viewer.txt"
sed -n '/^timelines:/,$p' "$tmp/serial.txt" > "$tmp/summary_live.txt"
sed -n '/^timelines:/,$p' "$tmp/viewer.txt" > "$tmp/summary_offline.txt"
if ! cmp -s "$tmp/summary_live.txt" "$tmp/summary_offline.txt"; then
	echo "timeline smoke: offline viewer summary disagrees with the live one" >&2
	diff "$tmp/summary_live.txt" "$tmp/summary_offline.txt" >&2 || true
	exit 1
fi
if ! grep -q "worst-K record(s)" "$tmp/summary_live.txt"; then
	echo "timeline smoke: summary missing worst-K forensics" >&2
	exit 1
fi

echo "timeline smoke OK (trace sha256 $digest)"
