#!/usr/bin/env bash
# Paper-fidelity gate (`make figures-gate`): regenerate the fast-scale
# evaluation sweep and hold it to three contracts at once:
#
#   1. Exact: every structured Result record matches its checked-in golden
#      (goldens/*.json) cell for cell — the simulator is deterministic, so
#      any divergence is drift somebody must either fix or bless via
#      `make goldens`.
#   2. Shape: the paper's claims (§V orderings, bands, knees) hold on the
#      fresh results — a recalibration can move numbers, never the story.
#   3. Rendered: the committed bench_tables.txt is byte-identical to the
#      regenerated output, so the human-readable artifact can't go stale.
#
# Everything the gate produces lands in $FIGURES_OUT (default: a temp dir)
# so CI can upload it — results.json, the fidelity report, the rendered
# tables, and any diff — even when the gate fails.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${FIGURES_OUT:-$(mktemp -d)}
mkdir -p "$out"
status=0

echo "figures-gate: regenerating the fast sweep (artifacts in $out)"
# -check runs the in-process comparison (report on stderr, nonzero exit on
# drift); stdout must stay pure tables so the rendered diff below works.
if ! go run ./cmd/bmstore-bench -scale fast -trace-digest \
	-json "$out/results.json" -check goldens > "$out/bench_tables.txt"; then
	echo "figures-gate: bmstore-bench -check flagged drift or a shape violation" >&2
	status=1
fi

# The offline comparator produces the pretty drift report artifact; it must
# agree with -check above (same fidelity.Check underneath).
if ! go run ./cmd/bmsctl fidelity-diff goldens "$out/results.json" > "$out/fidelity_report.txt" 2>&1; then
	status=1
fi
cat "$out/fidelity_report.txt"

if ! diff -u bench_tables.txt "$out/bench_tables.txt" > "$out/bench_tables.diff"; then
	echo "figures-gate: committed bench_tables.txt does not match regenerated output:" >&2
	cat "$out/bench_tables.diff" >&2
	status=1
fi

if [ "$status" -ne 0 ]; then
	echo "figures-gate: FAIL — inspect the report above; if the new numbers are" >&2
	echo "figures-gate: intentional AND the shape rules still pass, bless them with 'make goldens'" >&2
	exit 1
fi
echo "figures-gate: OK"
