#!/usr/bin/env bash
# CI smoke for the chaos-campaign subsystem: run a fixed-seed campaign —
# seeded fault schedules (benign and data-hazard regimes) under the
# write-then-verify workload — twice, serial and parallel. The campaign must
# come back green (every invariant intact), actually exercise the hazard
# detectors (nonzero caught violations across the campaign), and print a
# byte-identical report and digest for any -parallel value. On a red
# campaign the report already names each failing seed with its
# copy-pasteable `fiosim -chaos <seed>,1` replay; it is echoed here so the
# CI log carries the recipe.
set -euo pipefail

CAMPAIGN='1,12'

if ! out_serial=$(go run ./cmd/fiosim -chaos "$CAMPAIGN" -parallel 1 2>/dev/null); then
	echo "chaos campaign failed; failing seeds and replay commands:" >&2
	echo "$out_serial" >&2
	echo "replay any failing seed with: go run ./cmd/fiosim -chaos <seed>,1" >&2
	exit 1
fi
if ! out_parallel=$(go run ./cmd/fiosim -chaos "$CAMPAIGN" -parallel 4 2>/dev/null); then
	echo "chaos campaign failed under -parallel 4:" >&2
	echo "$out_parallel" >&2
	exit 1
fi

if [ "$out_serial" != "$out_parallel" ]; then
	echo "chaos campaign diverges between -parallel 1 and -parallel 4:" >&2
	echo "--- serial ---" >&2
	echo "$out_serial" >&2
	echo "--- parallel ---" >&2
	echo "$out_parallel" >&2
	exit 1
fi

echo "$out_serial"

if ! echo "$out_serial" | grep -q 'verdict: PASS'; then
	echo "campaign did not report a PASS verdict" >&2
	exit 1
fi
if ! echo "$out_serial" | grep -Eq 'viol=[1-9]' ; then
	echo "no hazard was caught anywhere in the campaign — detectors unexercised" >&2
	exit 1
fi
if ! echo "$out_serial" | grep -q 'campaign digest: '; then
	echo "campaign printed no digest" >&2
	exit 1
fi
echo "chaos smoke OK"
