#!/usr/bin/env bash
# CI smoke for the fault-injection subsystem: run fiosim with injected
# faults (an SSD controller stall plus recurring slow media reads) twice,
# serial and parallel. The run must complete — the host driver's
# timeout/abort/retry machinery absorbs every fault — report a nonzero
# injected count, and print byte-identical results and trace digests for
# any -parallel value.
set -euo pipefail

SPEC='ssd-stall,t=10ms,dur=8ms;media-slow,nth=50,count=-1,dur=1ms'
ARGS="-scheme bmstore -rw randrw -iodepth 8 -numjobs 2 -runtime 30ms -runs 2 -trace-digest"

# shellcheck disable=SC2086 # ARGS is a deliberate word-split flag list
out_serial=$(go run ./cmd/fiosim $ARGS -faults "$SPEC" -parallel 1 2>/dev/null)
# shellcheck disable=SC2086
out_parallel=$(go run ./cmd/fiosim $ARGS -faults "$SPEC" -parallel 2 2>/dev/null)

if [ "$out_serial" != "$out_parallel" ]; then
	echo "faulted runs diverge between -parallel 1 and -parallel 2:" >&2
	echo "--- serial ---" >&2
	echo "$out_serial" >&2
	echo "--- parallel ---" >&2
	echo "$out_parallel" >&2
	exit 1
fi

echo "$out_serial"

if ! echo "$out_serial" | grep -Eq 'faults +: [1-9][0-9]* injected'; then
	echo "expected a nonzero injected-fault count" >&2
	exit 1
fi
echo "fault smoke OK"
