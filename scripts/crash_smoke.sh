#!/usr/bin/env bash
# CI smoke for the crash-recovery subsystem: a fixed-seed crash-point sweep
# (every pipeline-stage boundary, fio verify + chaos oracle through
# recovery) run serial and parallel and at GOMAXPROCS 1/2/8. The report
# and the JSON export must be byte-identical across all of them, the
# verdict must be PASS, and the sweep digest must match the committed
# golden (goldens/crash_smoke.digest — re-bless by running this script
# with BLESS=1 after an intentional behaviour change). A failing crash
# point is printed by the report itself as an exact replay command
# (`bmstore-bench -crash-sweep -crash-seed S -crash-point N`).
set -euo pipefail
cd "$(dirname "$0")/.."

golden=goldens/crash_smoke.digest
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

ARGS="-crash-sweep -crash-seed 1 -crash-seeds 2"

# shellcheck disable=SC2086 # ARGS is a deliberate word-split flag list
GOMAXPROCS=1 go run ./cmd/bmstore-bench $ARGS -parallel 1 -crash-json "$tmp/serial.json" > "$tmp/serial.txt" 2>/dev/null
# shellcheck disable=SC2086
GOMAXPROCS=2 go run ./cmd/bmstore-bench $ARGS -parallel 4 -crash-json "$tmp/p2.json" > "$tmp/p2.txt" 2>/dev/null
# shellcheck disable=SC2086
GOMAXPROCS=8 go run ./cmd/bmstore-bench $ARGS -parallel 4 -crash-json "$tmp/p8.json" > "$tmp/p8.txt" 2>/dev/null

for v in p2 p8; do
	if ! cmp -s "$tmp/serial.txt" "$tmp/$v.txt"; then
		echo "crash smoke: report diverges between serial and $v" >&2
		diff "$tmp/serial.txt" "$tmp/$v.txt" >&2 || true
		exit 1
	fi
	if ! cmp -s "$tmp/serial.json" "$tmp/$v.json"; then
		echo "crash smoke: JSON export diverges between serial and $v" >&2
		exit 1
	fi
done
if ! grep -q "verdict: PASS" "$tmp/serial.txt"; then
	echo "crash smoke: sweep did not verify clean (replay commands above each FAIL point):" >&2
	cat "$tmp/serial.txt" >&2
	exit 1
fi

digest=$(grep "^sweep digest:" "$tmp/serial.txt" | awk '{print $3}')
if [ "${BLESS:-0}" = "1" ]; then
	echo "$digest" > "$golden"
	echo "crash smoke: blessed $golden = $digest"
fi
if [ ! -f "$golden" ]; then
	echo "crash smoke: missing $golden (run with BLESS=1 to create it)" >&2
	exit 1
fi
want=$(cat "$golden")
if [ "$digest" != "$want" ]; then
	echo "crash smoke: sweep digest drifted:" >&2
	echo "  got  $digest" >&2
	echo "  want $want (goldens/crash_smoke.digest)" >&2
	echo "An intentional behaviour change is re-blessed with BLESS=1 $0" >&2
	exit 1
fi

# The JSON export must load in the offline viewer and agree on the verdict.
go run ./cmd/bmsctl crash "$tmp/serial.json" > "$tmp/viewer.txt"
if ! grep -q "verdict: PASS" "$tmp/viewer.txt"; then
	echo "crash smoke: offline viewer disagrees with the live verdict" >&2
	cat "$tmp/viewer.txt" >&2
	exit 1
fi

echo "crash smoke OK (sweep digest $digest)"
