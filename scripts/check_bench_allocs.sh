#!/usr/bin/env bash
# Alloc-regression gate for the simulation kernel's hot path.
#
# Runs the scheduler throughput benchmarks with -benchmem and compares each
# benchmark's allocs/op against the committed baseline in
# scripts/bench_allocs_baseline.txt. The kernel free-lists events and the
# Schedule fast path allocates nothing, so the baseline is 0 allocs/op; any
# change that reintroduces a per-event allocation fails this gate.
#
# -benchtime=100x keeps the gate cheap: Go counts allocations exactly (no
# sampling), so a short run is deterministic. The only 100x artifact is
# one-time warm-up cost showing through the per-op average; the committed
# baselines account for it.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_allocs_baseline.txt
out=$(go test -run '^$' -bench 'Throughput$' -benchtime=100x -benchmem ./internal/sim/)
echo "$out"

status=0
while read -r name allowed; do
    case "$name" in ''|\#*) continue ;; esac
    got=$(printf '%s\n' "$out" | awk -v n="$name" 'index($1, n) == 1 {print $(NF-1)}')
    if [ -z "$got" ]; then
        echo "bench-gate: benchmark $name did not run" >&2
        status=1
        continue
    fi
    if [ "$got" -gt "$allowed" ]; then
        echo "bench-gate: FAIL $name allocs/op = $got, baseline $allowed" >&2
        status=1
    else
        echo "bench-gate: ok   $name allocs/op = $got (baseline $allowed)"
    fi
done < "$baseline"
exit $status
