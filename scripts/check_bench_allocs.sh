#!/usr/bin/env bash
# Alloc-regression gate for the simulation hot paths.
#
# Runs the kernel scheduler throughput benchmarks (internal/sim) and the
# end-to-end I/O path benchmarks (BenchmarkIOPathThroughput and its
# sampled-timeline variant BenchmarkIOPathSampledTimeline, root package)
# with -benchmem and compares each benchmark's allocs/op against the
# committed baseline in scripts/bench_allocs_baseline.txt. The kernel
# free-lists events, the fused data path pools every per-command carrier,
# and the Schedule fast path allocates nothing, so the baselines are 0
# allocs/op; any change that reintroduces a per-event or per-I/O allocation
# fails this gate. Re-bless intentional changes with `make bench-baseline`.
#
# Short fixed benchtimes keep the gate cheap: Go counts allocations exactly
# (no sampling), so a short run is deterministic. The only artifact is
# one-time warm-up cost showing through the per-op average; the committed
# baselines account for it. The I/O path benchmark runs 1000x so its fixed
# per-batch setup (worker processes) amortises to 0.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_allocs_baseline.txt
out=$(go test -run '^$' -bench 'Throughput$' -benchtime=100x -benchmem ./internal/sim/)
out+=$'\n'
out+=$(go test -run '^$' -bench '^BenchmarkIOPath(Throughput|SampledTimeline)$' -benchtime=1000x -benchmem .)
echo "$out"

status=0
while read -r name allowed; do
    case "$name" in ''|\#*) continue ;; esac
    got=$(printf '%s\n' "$out" | awk -v n="$name" 'index($1, n) == 1 {print $(NF-1)}')
    if [ -z "$got" ]; then
        echo "bench-gate: benchmark $name did not run" >&2
        status=1
        continue
    fi
    if [ "$got" -gt "$allowed" ]; then
        echo "bench-gate: FAIL $name allocs/op = $got, baseline $allowed" >&2
        status=1
    else
        echo "bench-gate: ok   $name allocs/op = $got (baseline $allowed)"
    fi
done < "$baseline"
exit $status
