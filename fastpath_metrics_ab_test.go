package bmstore

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"bmstore/internal/fio"
	"bmstore/internal/host"
	"bmstore/internal/obs"
	"bmstore/internal/obs/timeline"
	"bmstore/internal/sim"
	"bmstore/internal/ssd"
)

// abMetricsOutcome extends the A/B observables with everything the
// telemetry layer produced: the full metrics snapshot and the Perfetto
// trace bytes of the sampled timelines.
type abMetricsOutcome struct {
	rand     *fio.Result
	seq      *fio.Result
	end      sim.Time
	fastPath bool
	events   uint64 // kernel events fired (intentionally path-dependent)
	snapshot []byte
	trace    []byte
}

// stripPathCost removes the metrics that measure host-kernel scheduling
// cost rather than simulated behaviour: the "sim" component's counters and
// the driver's events_per_io histogram. Those are exactly what the fused
// fast path exists to reduce, so they legitimately differ between the A
// and B runs; everything else must match byte for byte. It returns the
// events_fired count it stripped.
func stripPathCost(snap *obs.Snapshot) uint64 {
	var events uint64
	comps := snap.Components[:0]
	for _, c := range snap.Components {
		if c.Name == "sim" {
			for _, ctr := range c.Counters {
				if ctr.Name == "events_fired" {
					events = ctr.Value
				}
			}
			continue
		}
		hists := c.Hists[:0]
		for _, h := range c.Hists {
			if h.Name != "events_per_io" {
				hists = append(hists, h)
			}
		}
		c.Hists = hists
		comps = append(comps, c)
	}
	snap.Components = comps
	return events
}

// runABMetrics is runAB with always-on telemetry attached: a metrics
// registry recording sampled request timelines (1-in-8) plus worst-8
// tail forensics.
func runABMetrics(t *testing.T, classic bool) abMetricsOutcome {
	t.Helper()
	met := obs.New(obs.Options{
		SeriesInterval: obs.DefaultSeriesInterval,
		Timeline:       timeline.Config{SampleEvery: 8, WorstK: 8},
	})
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.NumSSDs = 2
	cfg.DisableFastPath = classic
	cfg.Metrics = met
	cfg.Engine.ChunkBytes = 1 << 24
	cfg.SSD = func(i int) ssd.Config {
		c := ssd.P4510("AB" + string(rune('A'+i)))
		c.CapacityBytes = 1 << 30
		return c
	}
	tb, err := NewBMStoreTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out abMetricsOutcome
	tb.Run(func(p *sim.Proc) {
		if err := tb.Console.CreateNamespace(p, "vol", 64<<20, []int{0, 1}); err != nil {
			panic(err)
		}
		if err := tb.Console.Bind(p, "vol", 0); err != nil {
			panic(err)
		}
		drv, err := tb.AttachTenant(p, 0, host.DefaultDriverConfig())
		if err != nil {
			panic(err)
		}
		devs := []host.BlockDevice{drv.BlockDev(0), drv.BlockDev(1)}
		out.rand = fio.Run(p, devs, fio.Spec{
			Name: "ab-randrw", Pattern: fio.RandRW, BlockSize: 4096,
			IODepth: 16, NumJobs: 2, Runtime: 4 * sim.Millisecond,
		})
		out.seq = fio.Run(p, devs, fio.Spec{
			Name: "ab-seq", Pattern: fio.SeqWrite, BlockSize: 128 << 10,
			IODepth: 8, NumJobs: 2, Runtime: 4 * sim.Millisecond,
		})
		out.end = p.Now()
	})
	out.fastPath = tb.Env.FastPath()
	snapshot := met.Snapshot()
	out.events = stripPathCost(&snapshot)
	snap, err := json.Marshal(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	out.snapshot = snap
	var buf bytes.Buffer
	if err := timeline.WriteTrace(&buf, []timeline.RigDump{met.Timeline().Dump("ab")}); err != nil {
		t.Fatal(err)
	}
	out.trace = buf.Bytes()
	return out
}

// TestFastPathMetricsTimelineEquivalence pins the always-on telemetry
// boundary: attaching a metrics registry — including sampled timelines and
// worst-K forensics — must not force the classic path, and the fused fast
// path must produce byte-identical telemetry to the classic path, not just
// identical workload results. A divergence here means an observation point
// was placed at different virtual-time positions on the two paths.
func TestFastPathMetricsTimelineEquivalence(t *testing.T) {
	fast := runABMetrics(t, false)
	classic := runABMetrics(t, true)

	// The telemetry boundary itself: metrics+timeline leave the fast path
	// on; DisableFastPath is what turned it off for the classic run.
	if !fast.fastPath {
		t.Error("Env.FastPath() is false with metrics+timeline attached; telemetry must not gate the fast path")
	}
	if classic.fastPath {
		t.Error("Env.FastPath() is true despite DisableFastPath")
	}

	if fast.end != classic.end {
		t.Fatalf("virtual end time diverged: fast %d, classic %d", fast.end, classic.end)
	}
	if !reflect.DeepEqual(fast.rand, classic.rand) {
		t.Error("rand-rw fio results diverged between fast and classic with telemetry on")
	}
	if !reflect.DeepEqual(fast.seq, classic.seq) {
		t.Error("seq fio results diverged between fast and classic with telemetry on")
	}
	if !bytes.Equal(fast.snapshot, classic.snapshot) {
		t.Errorf("metrics snapshot JSON diverged between fast and classic paths:\nfast:    %d bytes\nclassic: %d bytes",
			len(fast.snapshot), len(classic.snapshot))
	}
	// The stripped path-cost metric should show fusion working: the fast
	// path fires strictly fewer kernel events for the identical workload.
	if fast.events >= classic.events {
		t.Errorf("fast path fired %d kernel events, classic %d; fusion should reduce them", fast.events, classic.events)
	}
	if !bytes.Equal(fast.trace, classic.trace) {
		t.Errorf("Perfetto trace bytes diverged between fast and classic paths:\nfast:    %d bytes\nclassic: %d bytes",
			len(fast.trace), len(classic.trace))
	}
	if len(fast.trace) == 0 || !bytes.Contains(fast.trace, []byte(`"bmstore_rig"`)) {
		t.Error("trace export looks empty; the recorder never saw the workload")
	}
}
